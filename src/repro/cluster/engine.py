"""The cluster's discrete-event executor (on :mod:`repro.sim`).

:class:`ClusterEngine` drives every :class:`~repro.cluster.core.\
ProvingCluster` run through one :class:`~repro.sim.Simulator`, so job
completions, node crashes, recoveries, retries, and autoscaler ticks
interleave on a single deterministic model-time axis:

* :meth:`run_wave` — the failure-free drain: every pre-routed pending
  job is processed per node in ``(arrival, job_id)`` order.  This is
  event-scheduled but arithmetically identical to the pre-engine
  sequential drain, so ``BENCH_cluster.json`` numbers are unchanged
  (``tests/test_cluster.py`` holds the sim/execute equality).
* :meth:`run_scenario` — the failure-aware run: jobs are *submitted at
  their arrival times* and routed on arrival; a churn trace
  (:mod:`repro.workloads.churn`) crashes and recovers nodes mid-stream;
  an optional :class:`~repro.cluster.autoscale.AutoscalePolicy` resizes
  the fleet from the plan-predicted backlog signal.

Failure semantics: a crash loses the node's *in-flight* job (the lost
model seconds are accounted), cold-starts its index cache, and takes
its ring points away so only ~K/N fingerprints remap.  The lost job's
``attempt`` is bumped and it is requeued through the router with the
failed node excluded — deterministically, so the same seed and trace
give identical retry counts (and, in execute mode, identical proof
bytes).  Queued-but-unstarted jobs requeue without a retry penalty
(queue state is coordinator-side).  Jobs that exhaust ``max_retries``
or strand with the whole fleet down are *failed* and count as deadline
misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import TYPE_CHECKING, Iterable

from repro.carbon.runtime import CarbonRuntime
from repro.cluster.nodes import JobRecord, ProverNode
from repro.cluster.records import RetryPolicy
from repro.cluster.routing import NoRoutableNodeError
from repro.fleet.events import EventLog
from repro.service.jobs import ProofJob, RequestClass
from repro.sim import EventHandle, Simulator, TraceSource, install
from repro.workloads.churn import ChurnEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.core import ProvingCluster

#: same-time event priorities: arrivals first, then starts and
#: finishes, then churn, then autoscaler ticks — a fixed total order
#: so simultaneous events never depend on scheduling accidents
PRIO_ARRIVAL = 0
PRIO_START = 1
PRIO_FINISH = 2
PRIO_CHURN = 3
PRIO_TICK = 4


@dataclass
class ResilienceStats:
    """Failure/retry/autoscale accounting for one scenario run.

    Counters cover the *serving window*: once the last job resolves,
    the remaining churn trace is cancelled, so two cells replaying one
    trace can legitimately report slightly different crash/recovery
    counts when their jobs finish at different times.
    """

    crashes: int = 0
    recoveries: int = 0
    #: in-flight jobs lost to a crash and requeued (attempt bumped)
    retries: int = 0
    #: queued jobs moved off a crashed node (no retry penalty)
    requeues: int = 0
    #: times a job had to park because the whole fleet was down
    parked: int = 0
    #: retry exclusions waived because only excluded nodes were up
    exclusion_waivers: int = 0
    #: jobs dropped: retries exhausted or stranded with the fleet down
    failed: int = 0
    #: model seconds of in-flight work destroyed by crashes
    lost_model_s: float = 0.0
    scale_outs: int = 0
    scale_ins: int = 0
    autoscale_actions: list[dict] = dc_field(default_factory=list)

    def as_dict(self) -> dict:
        """The ``resilience`` section of the cluster summary."""
        return {
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "retries": self.retries,
            "requeues": self.requeues,
            "parked": self.parked,
            "exclusion_waivers": self.exclusion_waivers,
            "failed_jobs": self.failed,
            "lost_model_s": round(self.lost_model_s, 6),
            "autoscale": {
                "scale_outs": self.scale_outs,
                "scale_ins": self.scale_ins,
                "actions": self.autoscale_actions,
            },
        }


class ClusterEngine:
    """One event-driven cluster run; see the module docstring."""

    def __init__(self, cluster: "ProvingCluster", *, respect_arrivals: bool = False):
        self.cluster = cluster
        self.respect = respect_arrivals
        self.sim = Simulator()
        self.stats = ResilienceStats()
        self.records: list[JobRecord] = []
        self.failed_jobs: list[ProofJob] = []
        self._start_handles: dict[str, EventHandle] = {}
        self._finish_handles: dict[str, EventHandle] = {}
        self._parked: list[ProofJob] = []
        self._cancellable: list[EventHandle] = []
        self._tick_handle: EventHandle | None = None
        self._total_jobs = 0
        self._scenario = False
        self.max_retries = cluster.config.max_retries
        #: shared crash-retry contract (same object family the fleet uses)
        self.retry_policy = RetryPolicy(cluster.config.max_retries)
        #: structured JSONL event log on the model clock (shared schema
        #: with the real fleet — see :mod:`repro.fleet.events`)
        self.events = EventLog(clock=lambda: self.sim.now)
        #: carbon/power state machine (None = carbon-free run); with a
        #: passive runtime only pricing runs and every scheduling path
        #: below stays byte-identical to a carbon-free run
        carbon_config = getattr(cluster.config, "carbon", None)
        self.carbon: CarbonRuntime | None = (
            CarbonRuntime(carbon_config, cluster.time_model)
            if carbon_config is not None
            else None
        )
        # one parking maneuver at a time keeps suspension deterministic
        self._suspend_handle: EventHandle | None = None
        self._suspend_victim: str | None = None
        self._suspend_job: int | None = None
        self._suspend_for: str | None = None
        # per-node dedup keys so scheduler_choice / power_cap events
        # record decisions, not every re-kick of an unchanged one
        self._last_choice: dict[str, tuple] = {}
        self._last_cap_note: dict[str, tuple] = {}

    # -- node work loop ------------------------------------------------------
    def _kick(self, node: ProverNode) -> None:
        """(Re)arm ``node``: start its next job now or at its ready time."""
        if node.down or node.in_flight is not None:
            return
        handle = self._start_handles.pop(node.node_id, None)
        if handle is not None:
            handle.cancel()
        if self.carbon is not None and not self.carbon.passive:
            self._kick_carbon(node)
            return
        job = node.peek_next(respect_arrivals=self.respect)
        if job is None:
            return
        arrival = job.arrival_s if self.respect else 0.0
        ready = max(node.clock_s, arrival)
        if ready <= self.sim.now:
            self._begin(node)
        else:
            self._start_handles[node.node_id] = self.sim.schedule(
                ready, lambda: self._start_event(node), priority=PRIO_START
            )

    def _start_event(self, node: ProverNode) -> None:
        self._start_handles.pop(node.node_id, None)
        if node.down or node.in_flight is not None:
            return
        if self.carbon is not None and not self.carbon.passive:
            self._kick_carbon(node)
        else:
            self._begin(node)

    def _begin(self, node: ProverNode, job: ProofJob | None = None) -> None:
        if job is None:
            job = node.peek_next(respect_arrivals=self.respect)
        if job is None:
            return
        flight = node.begin(job, self.sim.now, respect_arrivals=self.respect)
        if self.carbon is not None:
            self.carbon.on_busy(node.node_id)
        self._finish_handles[node.node_id] = self.sim.schedule(
            flight.finish_s, lambda: self._finish(node), priority=PRIO_FINISH
        )

    def _finish(self, node: ProverNode) -> None:
        self._finish_handles.pop(node.node_id, None)
        flight = node.in_flight
        job = flight.job
        record = node.complete()
        self.records.append(record)
        self.events.emit(
            "job_completed",
            job_id=record.job_id,
            node_id=node.node_id,
            attempt=record.attempt,
            cache_hit=record.cache_hit,
        )
        if self.carbon is not None:
            self.carbon.account_segment(flight, record.finish_s)
            self.carbon.on_idle(node.node_id)
        if self._scenario:
            self.cluster.router.release(
                node.node_id, self.cluster.router.job_cost_s(job)
            )
            self._check_done()
        self._kick(node)
        self._rekick_power_waiters()

    # -- carbon/power scheduling gate ----------------------------------------
    def _kick_carbon(self, node: ProverNode) -> None:
        """Carbon-aware (re)arm of one idle node.

        Parked work resumes first (its banked phases are hostage to
        this node), then the policy picks among queued jobs, the
        carbon-waiting hold is applied, and finally the power cap gets
        a veto — which for a blocked *realtime* job also requests a
        deferrable suspension somewhere in the fleet.
        """
        carbon = self.carbon
        suspended = node.suspended_ids
        if suspended:
            if carbon.cap_allows(len(self.cluster.router.up_node_ids)):
                self._resume(node, suspended[0])
            # else: stay parked; the next finish/suspend re-kicks us
            return
        job, hold = carbon.select_job(
            node, now_s=self.sim.now, respect_arrivals=self.respect
        )
        if job is None:
            return
        arrival = job.arrival_s if self.respect else 0.0
        ready = max(node.clock_s, arrival)
        if hold is not None and hold > self.sim.now:
            self._note_hold(node, job, hold)
            self._start_handles[node.node_id] = self.sim.schedule(
                max(hold, ready),
                lambda: self._start_event(node),
                priority=PRIO_START,
            )
            return
        if ready > self.sim.now:
            self._start_handles[node.node_id] = self.sim.schedule(
                ready, lambda: self._start_event(node), priority=PRIO_START
            )
            return
        if not carbon.cap_allows(len(self.cluster.router.up_node_ids)):
            self._power_block(node, job)
            return
        self._note_choice(node, job)
        self._begin(node, job)

    def _note_hold(self, node: ProverNode, job: ProofJob, hold: float) -> None:
        """Record one carbon-waiting hold decision (deduplicated)."""
        key = (job.job_id, "hold", round(hold, 9))
        if self._last_choice.get(node.node_id) == key:
            return
        self._last_choice[node.node_id] = key
        self.carbon.held_starts += 1
        self.events.emit(
            "scheduler_choice",
            job_id=job.job_id,
            node_id=node.node_id,
            attempt=job.attempt,
            action="hold",
            until_s=round(hold, 6),
            policy=self.carbon.policy,
        )

    def _note_choice(self, node: ProverNode, job: ProofJob) -> None:
        """Record a queue-reordering pick (edd / skip-ahead) if one
        happened — starting the queue head is not a decision."""
        head = node.peek_next(respect_arrivals=self.respect)
        if head is None or head.job_id == job.job_id:
            return
        key = (job.job_id, "skip_ahead")
        if self._last_choice.get(node.node_id) == key:
            return
        self._last_choice[node.node_id] = key
        self.events.emit(
            "scheduler_choice",
            job_id=job.job_id,
            node_id=node.node_id,
            attempt=job.attempt,
            action="skip_ahead",
            policy=self.carbon.policy,
        )

    def _power_block(self, node: ProverNode, job: ProofJob) -> None:
        """Handle a start the fleet power cap vetoed.

        Liveness floor: with nothing busy and no parking in flight the
        start proceeds anyway (and is counted as a breach) — a cap that
        can never admit one busy node must not deadlock the fleet.  A
        blocked *realtime* job additionally requests that a running
        deferrable job park at its next phase boundary.
        """
        carbon = self.carbon
        up_nodes = len(self.cluster.router.up_node_ids)
        if carbon.active_nodes == 0 and self._suspend_handle is None:
            carbon.cap_breaches += 1
            self.events.emit(
                "power_cap",
                job_id=job.job_id,
                node_id=node.node_id,
                attempt=job.attempt,
                reason="floor",
                draw_w=round(carbon.draw_w(up_nodes), 6),
            )
            self._note_choice(node, job)
            self._begin(node, job)
            return
        key = (job.job_id, "defer")
        if self._last_cap_note.get(node.node_id) != key:
            self._last_cap_note[node.node_id] = key
            carbon.cap_deferrals += 1
            self.events.emit(
                "power_cap",
                job_id=job.job_id,
                node_id=node.node_id,
                attempt=job.attempt,
                reason="defer",
                draw_w=round(carbon.draw_w(up_nodes), 6),
            )
        if job.request_class is RequestClass.REALTIME:
            self._request_suspension(node.node_id)

    def _request_suspension(self, beneficiary_id: str) -> None:
        """Park the deferrable flight with the earliest phase boundary.

        At most one parking maneuver is in flight at a time (the next
        blocked start re-requests after it lands), which keeps the
        victim choice a pure function of fleet state — the determinism
        argument for cap-driven preemption.
        """
        if self._suspend_handle is not None:
            return
        candidates: list[tuple[float, str, int]] = []
        for node_id in sorted(self.cluster.nodes):
            node = self.cluster.nodes[node_id]
            flight = node.in_flight
            if node.down or flight is None:
                continue
            if flight.job.request_class is not RequestClass.DEFERRABLE:
                continue
            boundary = self.carbon.next_boundary(flight, self.sim.now)
            if boundary is not None:
                candidates.append((boundary, node_id, flight.job.job_id))
        if not candidates:
            return
        boundary, victim_id, job_id = min(candidates)
        self._suspend_victim = victim_id
        self._suspend_job = job_id
        self._suspend_for = beneficiary_id
        self._suspend_handle = self.sim.schedule(
            max(boundary, self.sim.now),
            lambda: self._suspend_event(victim_id),
            priority=PRIO_START,
        )

    def _suspend_event(self, victim_id: str) -> None:
        """Fire a scheduled park at the victim's phase boundary."""
        self._suspend_handle = None
        beneficiary_id = self._suspend_for
        expected_job = self._suspend_job
        self._suspend_victim = None
        self._suspend_job = None
        self._suspend_for = None
        node = self.cluster.nodes.get(victim_id)
        flight = node.in_flight if node is not None else None
        if (
            node is None
            or node.down
            or flight is None
            or flight.job.job_id != expected_job
        ):
            # the victim finished, crashed, or swapped jobs meanwhile
            self._rekick_power_waiters()
            return
        handle = self._finish_handles.pop(victim_id, None)
        if handle is not None:
            handle.cancel()
        self.carbon.account_segment(flight, self.sim.now)
        node.suspend(self.sim.now)
        self.carbon.on_idle(victim_id)
        self.carbon.suspends += 1
        total = flight.install_s + flight.prove_s
        self.events.emit(
            "job_suspend",
            job_id=flight.job.job_id,
            node_id=victim_id,
            attempt=flight.job.attempt,
            done_s=round(flight.done_before_s, 6),
            remaining_s=round(total - flight.done_before_s, 6),
        )
        # the beneficiary the headroom was freed for starts first, so a
        # resumed deferrable can never steal it back at this timestamp
        beneficiary = (
            self.cluster.nodes.get(beneficiary_id)
            if beneficiary_id is not None
            else None
        )
        if beneficiary is not None:
            self._kick(beneficiary)
        self._rekick_power_waiters()

    def _resume(self, node: ProverNode, job_id: int) -> None:
        """Unpark a suspended job on its node and re-arm its finish."""
        flight = node.resume(job_id, self.sim.now)
        self.carbon.on_busy(node.node_id)
        self.carbon.resumes += 1
        self.events.emit(
            "job_resume",
            job_id=job_id,
            node_id=node.node_id,
            attempt=flight.job.attempt,
            remaining_s=round(flight.finish_s - flight.start_s, 6),
        )
        self._finish_handles[node.node_id] = self.sim.schedule(
            flight.finish_s, lambda: self._finish(node), priority=PRIO_FINISH
        )

    def _rekick_power_waiters(self) -> None:
        """Re-arm idle nodes after cap headroom may have changed.

        Two passes in node order — nodes whose next start is realtime
        first, then the rest — so freed watts always go to the
        latency-sensitive class before deferrable work re-fills them.
        """
        carbon = self.carbon
        if carbon is None or carbon.passive or carbon.power_cap_w is None:
            return
        for realtime_first in (True, False):
            for node_id in sorted(self.cluster.nodes):
                node = self.cluster.nodes[node_id]
                if node.down or node.in_flight is not None:
                    continue
                head = node.peek_next(respect_arrivals=self.respect)
                if head is None and not node.suspended_ids:
                    continue
                is_realtime = (
                    head is not None
                    and head.request_class is RequestClass.REALTIME
                )
                if is_realtime == realtime_first:
                    self._kick(node)

    # -- scenario-side routing ----------------------------------------------
    def _route(self, job: ProofJob) -> str | None:
        """Route one job, parking it when nothing is routable.

        Node exclusion is best-effort: when the exclusion set would
        leave a job with no home while other nodes are up, the
        exclusion is waived (and counted) rather than starving the job
        — a recovered loser is still a better home than no home.  Jobs
        park only when the whole fleet is down.
        """
        router = self.cluster.router
        try:
            node_id = router.assign(job, exclude=job.excluded_node_ids)
        except NoRoutableNodeError:
            if not router.up_node_ids:
                self.stats.parked += 1
                self._parked.append(job)
                return None
            self.stats.exclusion_waivers += 1
            node_id = router.assign(job)
        node = self.cluster.nodes[node_id]
        node.submit(job)
        self.events.emit(
            "job_assigned",
            job_id=job.job_id,
            node_id=node_id,
            attempt=job.attempt,
        )
        self._kick(node)
        return node_id

    def _unpark(self) -> None:
        """Retry every parked job after a node became routable."""
        parked, self._parked = self._parked, []
        for job in sorted(parked, key=lambda j: (j.arrival_s, j.job_id)):
            self._route(job)

    def _submit(self, job: ProofJob) -> None:
        """Arrival event: id-stamp and route one job."""
        self.cluster.check_fits(job)
        job.job_id = self.cluster.next_job_id()
        self.events.emit("job_accepted", job_id=job.job_id, tag=job.tag)
        self._route(job)

    def _fail(self, job: ProofJob) -> None:
        self.stats.failed += 1
        self.failed_jobs.append(job)
        self.events.emit("job_failed", job_id=job.job_id, attempt=job.attempt)
        self._check_done()

    def _check_done(self) -> None:
        """Stop churn/autoscale event streams once every job resolved."""
        if len(self.records) + len(self.failed_jobs) < self._total_jobs:
            return
        for handle in self._cancellable:
            handle.cancel()
        self._cancellable.clear()
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None

    # -- churn ---------------------------------------------------------------
    def _on_churn(self, event: ChurnEvent) -> None:
        node = self.cluster.nodes.get(f"node-{event.node_index}")
        if node is None:
            return  # retired by the autoscaler; churn no longer applies
        if event.kind == "crash":
            if not node.down:
                self._crash(node)
        elif node.down:
            self._recover(node)

    def _crash(self, node: ProverNode) -> None:
        self.stats.crashes += 1
        handle = self._start_handles.pop(node.node_id, None)
        if handle is not None:
            handle.cancel()
        if node.node_id in (self._suspend_victim, self._suspend_for):
            # a parking maneuver touching this node is moot either way
            if self._suspend_handle is not None:
                self._suspend_handle.cancel()
            self._suspend_handle = None
            self._suspend_victim = None
            self._suspend_job = None
            self._suspend_for = None
        retry_job: ProofJob | None = None
        if node.in_flight is not None:
            handle = self._finish_handles.pop(node.node_id, None)
            if handle is not None:
                handle.cancel()
            if self.carbon is not None:
                self.carbon.account_segment(
                    node.in_flight, self.sim.now, lost=True
                )
                self.carbon.on_idle(node.node_id)
            retry_job, lost = node.abort(self.sim.now)
            self.stats.lost_model_s += lost
        requeued = node.crash(self.sim.now)
        self.cluster.router.mark_down(node.node_id)
        self.events.emit("node_down", node_id=node.node_id, reason="crash")
        for job in sorted(requeued, key=lambda j: (j.arrival_s, j.job_id)):
            self.stats.requeues += 1
            self._route(job)
        if retry_job is not None:
            self.events.emit(
                "job_crashed",
                job_id=retry_job.job_id,
                node_id=node.node_id,
                attempt=retry_job.attempt,
            )
            if self.retry_policy.register_loss(retry_job, node.node_id):
                self.stats.retries += 1
                self.events.emit(
                    "job_retried",
                    job_id=retry_job.job_id,
                    attempt=retry_job.attempt,
                )
                self._route(retry_job)
            else:
                self._fail(retry_job)
        self._rekick_power_waiters()

    def _recover(self, node: ProverNode) -> None:
        self.stats.recoveries += 1
        node.recover(self.sim.now)
        self.cluster.router.mark_up(node.node_id)
        self.events.emit("node_up", node_id=node.node_id, reason="recover")
        self._unpark()
        self._kick(node)

    # -- autoscaler ----------------------------------------------------------
    def _backlog_signal_s(self) -> float | None:
        """Mean predicted outstanding seconds per up node (None = all down).

        Parked jobs count toward the backlog — they are exactly the
        work the fleet currently has no capacity for.
        """
        router = self.cluster.router
        up = router.up_node_ids
        if not up:
            return None
        outstanding = router.outstanding
        parked = sum(router.job_cost_s(job) for job in self._parked)
        return (sum(outstanding.node_s(n) for n in up) + parked) / len(up)

    def _tick(self) -> None:
        self._tick_handle = None
        if len(self.records) + len(self.failed_jobs) >= self._total_jobs:
            return
        policy = self.cluster.config.autoscale
        signal = self._backlog_signal_s()
        can_grow = len(self.cluster.nodes) < policy.max_nodes
        if signal is None:
            # whole fleet down: provision a replacement for parked work
            if self._parked and can_grow:
                self._scale_out(0.0)
        elif signal > policy.scale_out_threshold_s and can_grow:
            self._scale_out(signal)
        elif signal < policy.scale_in_threshold_s:
            self._scale_in(signal)
        if len(self.sim):
            # only re-arm while something else can still happen; with an
            # empty heap the state is frozen between ticks, so ticking
            # on would spin the simulation forever (stranded jobs are
            # failed at finalize instead)
            self._tick_handle = self.sim.schedule_after(
                policy.interval_s, self._tick, priority=PRIO_TICK
            )

    def _scale_out(self, signal: float) -> None:
        policy = self.cluster.config.autoscale
        node_id = self.cluster.add_node()
        node = self.cluster.nodes[node_id]
        self.stats.scale_outs += 1
        self.stats.autoscale_actions.append(
            {
                "at_s": round(self.sim.now, 6),
                "action": "scale_out",
                "node_id": node_id,
                "signal_s": round(signal, 6),
                "nodes": len(self.cluster.nodes),
            }
        )
        self.events.emit(
            "autoscale_decision",
            node_id=node_id,
            action="scale_out",
            signal_s=round(signal, 6),
            nodes=len(self.cluster.nodes),
        )
        if policy.provision_s > 0:
            # not routable until provisioned: down-marked, then revived
            node.down = True
            self.cluster.router.mark_down(node_id)
            self.sim.schedule_after(
                policy.provision_s,
                lambda: self._provisioned(node),
                priority=PRIO_CHURN,
            )
        else:
            self.events.emit(
                "node_up", node_id=node_id, reason="scale_out"
            )
            self._unpark()

    def _provisioned(self, node: ProverNode) -> None:
        if self.cluster.nodes.get(node.node_id) is not node:
            return  # retired before provisioning finished
        node.recover(self.sim.now)
        self.cluster.router.mark_up(node.node_id)
        self.events.emit("node_up", node_id=node.node_id, reason="scale_out")
        self._unpark()
        self._kick(node)

    def _scale_in(self, signal: float) -> None:
        policy = self.cluster.config.autoscale
        router = self.cluster.router
        if len(router.up_node_ids) <= policy.min_nodes:
            return
        idle = [
            node_id
            for node_id in router.up_node_ids
            if self.cluster.nodes[node_id].idle
        ]
        if not idle:
            return
        # retire the newest idle node: scale-in unwinds scale-out
        node_id = max(idle, key=lambda n: int(n.rsplit("-", 1)[1]))
        node = self.cluster.nodes[node_id]
        node.flush_service()  # execute mode: prove its backlog first
        self.cluster.remove_node(node_id)
        self.events.emit("node_down", node_id=node_id, reason="scale_in")
        self.stats.scale_ins += 1
        self.stats.autoscale_actions.append(
            {
                "at_s": round(self.sim.now, 6),
                "action": "scale_in",
                "node_id": node_id,
                "signal_s": round(signal, 6),
                "nodes": len(self.cluster.nodes),
            }
        )
        self.events.emit(
            "autoscale_decision",
            node_id=node_id,
            action="scale_in",
            signal_s=round(signal, 6),
            nodes=len(self.cluster.nodes),
        )

    # -- entry points --------------------------------------------------------
    def _finalize(self) -> list[JobRecord]:
        """Sort, record, and really prove (execute mode) this run's work."""
        for job in sorted(self._parked, key=lambda j: (j.arrival_s, j.job_id)):
            self._fail(job)  # stranded: fleet was down to the end
        self._parked = []
        # jobs still parked at a phase boundary when the run drained out
        # are failed — their banked phases become lost model seconds
        stranded = []
        for node_id in sorted(self.cluster.nodes):
            stranded.extend(self.cluster.nodes[node_id].discard_suspended())
        for flight in sorted(
            stranded, key=lambda f: (f.job.arrival_s, f.job.job_id)
        ):
            self.stats.lost_model_s += flight.done_before_s
            self._fail(flight.job)
        self.records.sort(key=lambda r: (r.finish_s, r.job_id))
        self.cluster.records.extend(self.records)
        self.cluster.failed_jobs.extend(self.failed_jobs)
        for node_id in sorted(self.cluster.nodes):
            self.cluster.nodes[node_id].flush_service()
        return self.records

    def run_wave(self) -> list[JobRecord]:
        """Drain every pre-routed pending job (the failure-free path)."""
        self._scenario = False
        self._total_jobs = sum(
            node.pending for node in self.cluster.nodes.values()
        )
        for node_id in sorted(self.cluster.nodes):
            self._kick(self.cluster.nodes[node_id])
        self.sim.run()
        records = self._finalize()
        for node_id in sorted(self.cluster.nodes):
            self.cluster.router.release(node_id)
        return records

    def run_scenario(
        self,
        jobs: list[ProofJob],
        *,
        churn: Iterable[ChurnEvent] = (),
    ) -> list[JobRecord]:
        """Arrival-driven run with churn, retries, and autoscaling.

        Arrivals are always respected (jobs are routed at their
        ``arrival_s``), so deadline accounting is meaningful.  The
        churn trace addresses nodes by *initial* index; events for
        nodes the autoscaler has retired are skipped.
        """
        self._scenario = True
        self.respect = True
        self._total_jobs = len(jobs)
        for job in jobs:
            self.sim.schedule(
                job.arrival_s,
                (lambda j=job: self._submit(j)),
                priority=PRIO_ARRIVAL,
            )
        self._cancellable.extend(
            install(
                self.sim,
                TraceSource([(event.at_s, event) for event in churn]),
                self._on_churn,
                priority=PRIO_CHURN,
            )
        )
        if self.cluster.config.autoscale is not None:
            self._tick_handle = self.sim.schedule(
                self.cluster.config.autoscale.interval_s,
                self._tick,
                priority=PRIO_TICK,
            )
        self.sim.run()
        return self._finalize()
