"""Job bookkeeping shared by the simulated cluster and the real fleet.

:class:`JobRecord` is the per-job completion ledger row both runtimes
produce — the simulated cluster fills it with *model* seconds
(:mod:`repro.cluster.engine`), the real fleet with *measured* wall
seconds relative to its run start (:mod:`repro.fleet.core`) — so one
metrics layer (:mod:`repro.cluster.metrics`,
:mod:`repro.fleet.metrics`) and one validation harness
(:mod:`repro.fleet.validation`) can consume either side without
translation.

:class:`RetryPolicy` is the matching crash-retry contract: attempt
counters, loser exclusion, and the ``max_retries`` → failure rule.  The
discrete-event engine and the asyncio fleet both call
:meth:`RetryPolicy.register_loss` at the one place a node loss is
accounted, so a job's retry history is identical whether the crash was
simulated or a real killed process.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.service.jobs import ProofJob


@dataclass
class JobRecord:
    """Completion-time bookkeeping for one routed job.

    Times are model seconds in the simulated cluster and run-relative
    wall seconds in the real fleet; the field meanings are otherwise
    identical (``prove_model_s`` holds the measured prove seconds on
    the fleet side — the "model" is then the wall clock itself).
    """

    job_id: int
    tag: str
    circuit_key: str
    node_id: str
    arrival_s: float
    start_s: float
    finish_s: float
    prove_model_s: float
    install_model_s: float
    cache_hit: bool
    #: absolute deadline the job carried (None = none), same clock as
    #: ``arrival_s``
    deadline_s: float | None = None
    #: retry ordinal at completion (0 = never lost to a crash)
    attempt: int = 0
    #: times the job was parked at a phase boundary (power capping)
    suspensions: int = 0
    #: model seconds spent parked between suspend and resume
    suspended_s: float = 0.0

    @property
    def latency_s(self) -> float:
        """Arrival-to-finish seconds."""
        return self.finish_s - self.arrival_s

    @property
    def missed_deadline(self) -> bool:
        """True when the job finished past its deadline."""
        return self.deadline_s is not None and self.finish_s > self.deadline_s


@dataclass(frozen=True)
class RetryPolicy:
    """Crash-retry contract shared by sim engine and real fleet.

    A job lost to its ``max_retries + 1``-th crash is failed; every
    loss excludes the losing node from the job's future placements
    (best-effort — routers may waive the exclusion rather than starve
    the job when only excluded nodes are up).
    """

    #: crash-retry budget per job (0 = any loss fails the job)
    max_retries: int = 2

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    def register_loss(self, job: ProofJob, node_id: str) -> bool:
        """Account one node loss on ``job``; True = retry, False = fail.

        Bumps ``job.attempt``, appends ``node_id`` to the job's
        exclusion set (deduplicated, order-preserving), and applies the
        retry budget.  Both runtimes call this exactly once per lost
        in-flight job, so attempt histories match between simulation
        and real execution.
        """
        job.attempt += 1
        job.excluded_node_ids = tuple(
            dict.fromkeys((*job.excluded_node_ids, node_id))
        )
        return job.attempt <= self.max_retries
