"""Plan-cost-driven fleet autoscaling policy.

The autoscaler closes the loop between the plan layer's predicted
outstanding cost (:class:`~repro.plan.OutstandingCost`, fed by the
router on every assignment) and fleet membership: every ``interval_s``
of model time it reads the *mean predicted outstanding seconds per up
node* and

* **scales out** — provisions one node (routable after
  ``provision_s``) — when the signal exceeds
  ``scale_out_threshold_s`` and the fleet is below ``max_nodes``;
* **scales in** — retires one idle node — when the signal falls below
  ``scale_in_threshold_s`` and the fleet is above ``min_nodes``.

One action per tick keeps the control loop deterministic and avoids
oscillation; thresholds are in predicted *seconds of backlog per node*,
the same unit the ``least_loaded`` router balances, so one cost model
drives routing and sizing alike.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AutoscalePolicy:
    """Threshold knobs for the cluster's autoscaler."""

    #: mean predicted outstanding s/node above which a node is added
    scale_out_threshold_s: float = 2.0
    #: mean predicted outstanding s/node below which an idle node retires
    scale_in_threshold_s: float = 0.25
    #: model seconds between autoscaler evaluations
    interval_s: float = 0.5
    #: fleet size bounds (scale-in never goes below ``min_nodes``,
    #: scale-out never above ``max_nodes``)
    min_nodes: int = 1
    max_nodes: int = 8
    #: model seconds before a provisioned node accepts traffic
    provision_s: float = 0.5

    def __post_init__(self):
        if self.interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {self.interval_s}")
        if self.scale_out_threshold_s <= 0:
            raise ValueError(
                "scale_out_threshold_s must be > 0, "
                f"got {self.scale_out_threshold_s}"
            )
        if not 0 <= self.scale_in_threshold_s < self.scale_out_threshold_s:
            raise ValueError(
                "scale_in_threshold_s must be in [0, scale_out_threshold_s); "
                f"got {self.scale_in_threshold_s}"
            )
        if self.min_nodes < 1:
            raise ValueError(f"min_nodes must be >= 1, got {self.min_nodes}")
        if self.max_nodes < self.min_nodes:
            raise ValueError(
                f"max_nodes ({self.max_nodes}) must be >= "
                f"min_nodes ({self.min_nodes})"
            )
        if self.provision_s < 0:
            raise ValueError(f"provision_s must be >= 0, got {self.provision_s}")
