"""Fleet-level measurement: makespan, imbalance, locality, resilience.

:func:`cluster_summary` renders one dict per cluster run:

* ``model`` — model-time results: makespan (latest node finish),
  throughput, fleet p50/p95/max latency, per-node busy seconds and
  utilization, load imbalance (max/mean busy), and the install share —
  the fraction of fleet busy time spent (re)building circuit indexes,
  which is exactly what affinity routing exists to shrink;
* ``cache`` — aggregate hit/miss/eviction stats over every node's
  simulated cache, plus the real per-node ``IndexCache`` stats when the
  cluster executed proofs;
* ``routing`` — jobs and distinct circuit shapes per node, and the
  *shape spread*: the mean number of nodes that saw each circuit
  structure (1.0 = perfect affinity, ≈N = every shape installed
  everywhere);
* ``deadlines`` (arrival-respecting runs) — :func:`deadline_stats`:
  how many deadline-carrying jobs finished late, with dropped jobs
  counted as misses — the headline the resilience benchmark gates on;
* ``retries`` / ``resilience`` (scenario runs) — :func:`retry_stats`
  latency accounting for crash-retried jobs, plus the engine's
  crash/recovery/requeue/autoscale counters.
"""

from __future__ import annotations

from repro.cluster.nodes import JobRecord, ProverNode
from repro.service.cache import CacheStats
from repro.service.metrics import percentile, percentiles


def _aggregate_stats(stats: list[CacheStats]) -> dict:
    total = CacheStats()
    for s in stats:
        total.hits += s.hits
        total.misses += s.misses
        total.evictions += s.evictions
        total.preprocess_s += s.preprocess_s
    return total.as_dict()


def load_imbalance(busy: list[float]) -> float:
    """Max node busy time over mean (1.0 = perfectly balanced)."""
    if not busy or sum(busy) == 0.0:
        return 1.0
    return max(busy) / (sum(busy) / len(busy))


def shape_spread(nodes: list[ProverNode]) -> float:
    """Mean number of nodes each circuit structure was routed to."""
    shapes: set[str] = set()
    for node in nodes:
        shapes |= node.shapes_seen
    if not shapes:
        return 0.0
    placements = sum(len(node.shapes_seen) for node in nodes)
    return placements / len(shapes)


def deadline_stats(records: list[JobRecord], failed_jobs: list) -> dict:
    """Deadline accounting over completed records and dropped jobs.

    Only jobs that carry a deadline participate; a dropped (failed) job
    with a deadline counts as a miss — losing a realtime job *is* a
    deadline miss from the client's point of view.  Lateness is
    ``finish - deadline`` over the missed completions.
    """
    dated = [r for r in records if r.deadline_s is not None]
    failed_dated = [j for j in failed_jobs if j.deadline_s is not None]
    missed_records = [r for r in dated if r.missed_deadline]
    total = len(dated) + len(failed_dated)
    missed = len(missed_records) + len(failed_dated)
    lateness = [r.finish_s - r.deadline_s for r in missed_records]
    return {
        "jobs": total,
        "met": total - missed,
        "missed": missed,
        "missed_by_failure": len(failed_dated),
        "miss_rate": round(missed / total, 4) if total else 0.0,
        "max_lateness_s": round(max(lateness), 6) if lateness else 0.0,
        "mean_lateness_s": (
            round(sum(lateness) / len(lateness), 6) if lateness else 0.0
        ),
    }


def retry_stats(records: list[JobRecord]) -> dict:
    """Latency cost of crash retries over one run's completed records.

    Splits fleet latency between first-try completions and jobs that
    were lost to at least one crash and reproven elsewhere — the
    retry-latency accounting ISSUE 5 asks the metrics layer to carry.
    """
    retried = [r for r in records if r.attempt > 0]
    first_try = [r for r in records if r.attempt == 0]

    def mean_latency(rows: list[JobRecord]) -> float:
        if not rows:
            return 0.0
        return round(sum(r.latency_s for r in rows) / len(rows), 6)

    return {
        "jobs_retried": len(retried),
        "attempts": sum(r.attempt for r in retried),
        "max_attempt": max((r.attempt for r in retried), default=0),
        "mean_latency_first_try_s": mean_latency(first_try),
        "mean_latency_retried_s": mean_latency(retried),
        "p95_latency_retried_s": round(
            percentile([r.latency_s for r in retried], 95), 6
        ),
    }


def cluster_summary(
    nodes: list[ProverNode],
    records: list[JobRecord],
    *,
    policy: str,
    time_model: str,
    failed_jobs: list | None = None,
    resilience: dict | None = None,
    deadlines: bool = False,
    carbon: dict | None = None,
) -> dict:
    """One summary dict over a finished cluster run."""
    makespan = max((r.finish_s for r in records), default=0.0)
    busy = [node.busy_s for node in nodes]
    latencies = [r.latency_s for r in records]
    lat_p50, lat_p95, lat_p99, lat_p99_9 = percentiles(
        latencies, (50, 95, 99, 99.9)
    )
    install_s = sum(r.install_model_s for r in records)
    prove_s = sum(r.prove_model_s for r in records)
    total_busy = install_s + prove_s
    doc = {
        "policy": policy,
        "time_model": time_model,
        "nodes": len(nodes),
        "jobs": len(records),
        "model": {
            "makespan_s": round(makespan, 6),
            "throughput_jobs_per_s": (
                round(len(records) / makespan, 3) if makespan > 0 else 0.0
            ),
            "latency_s": {
                "p50": round(lat_p50, 6),
                "p95": round(lat_p95, 6),
                "p99": round(lat_p99, 6),
                "p99_9": round(lat_p99_9, 6),
                "max": round(max(latencies), 6) if latencies else 0.0,
            },
            "busy_s": {n.node_id: round(n.busy_s, 6) for n in nodes},
            "utilization": {
                node.node_id: (
                    round(node.busy_s / makespan, 4) if makespan > 0 else 0.0
                )
                for node in nodes
            },
            "load_imbalance": round(load_imbalance(busy), 4),
            "install_s": round(install_s, 6),
            "prove_s": round(prove_s, 6),
            "install_share": (
                round(install_s / total_busy, 4) if total_busy > 0 else 0.0
            ),
        },
        "cache": {
            "sim": _aggregate_stats([node.sim_cache.stats for node in nodes]),
        },
        "routing": {
            "jobs_per_node": {n.node_id: n.jobs_done for n in nodes},
            "shapes_per_node": {n.node_id: len(n.shapes_seen) for n in nodes},
            "shape_spread": round(shape_spread(nodes), 4),
        },
    }
    if deadlines:
        doc["deadlines"] = deadline_stats(records, failed_jobs or [])
    if resilience is not None:
        doc["retries"] = retry_stats(records)
        doc["resilience"] = resilience
    if carbon is not None:
        doc["carbon"] = carbon
    real_stats = [
        node.real_cache_stats
        for node in nodes
        if node.real_cache_stats is not None
    ]
    if real_stats:
        doc["cache"]["real"] = _aggregate_stats(real_stats)
        measured = {n.node_id: round(n.measured_busy_s, 6) for n in nodes}
        measured_makespan = max(measured.values(), default=0.0)
        doc["measured"] = {
            "busy_s": measured,
            "makespan_s": round(measured_makespan, 6),
            "throughput_jobs_per_s": (
                round(len(records) / measured_makespan, 3)
                if measured_makespan > 0
                else 0.0
            ),
        }
    return doc
