"""Job-to-node routing: round-robin, least-loaded, fingerprint affinity.

The router decides which :class:`~repro.cluster.nodes.ProverNode` gets
each :class:`~repro.service.jobs.ProofJob`.  Three policies:

* ``round_robin`` — cycle through nodes in id order, ignoring cost and
  circuit structure.  The sharding baseline: even job counts, maximal
  index duplication.
* ``least_loaded`` — assign to the node with the smallest *predicted
  outstanding cost*: the sum of plan-predicted prove seconds
  (:class:`~repro.service.costing.JobCostModel`) of everything routed
  there but not yet drained.  Greedy argmin keeps the imbalance bound
  tight: no node's outstanding cost ever exceeds another's by more than
  one job at assignment time.
* ``affinity`` — consistent hashing on ``circuit_fingerprint`` via
  :class:`HashRing`, so every job proving one circuit structure lands on
  one node and the node's :class:`~repro.service.cache.IndexCache` (and
  its fixed-base MSM reuse) survives sharding.

:class:`HashRing` hashes with SHA-256, never Python's salted ``hash()``,
so placements are identical across runs, interpreters, and machines —
``tests/test_cluster_routing.py`` locks this across a process boundary.
Adding or removing a node only moves the keys that land on it
(~K/N of them), which is the whole point of hashing consistently.

Failure awareness (ISSUE 5) rides on the same guarantee: a crashed node
is *marked down* — its ring points are withdrawn, so only its ~K/N keys
remap, and every policy skips it — while staying a cluster member, so a
recovery re-adds the same points and the original placement returns.
Retries can additionally pass an ``exclude`` set so a requeued job never
lands back on the node that just lost it.
"""

from __future__ import annotations

import bisect
import hashlib
import heapq
from typing import Iterable

from repro.plan.cost import FunctionalProverCostModel, OutstandingCost, ShapeCostModel
from repro.service.jobs import ProofJob

#: routing policy names accepted by :class:`ClusterRouter`
ROUTING_POLICIES = ("round_robin", "least_loaded", "affinity")


class NoRoutableNodeError(RuntimeError):
    """Raised when every cluster node is down or excluded.

    The failure-aware engine catches this to *park* jobs until a node
    recovers; reaching it through the plain :class:`ClusterRouter` API
    means the caller took the whole fleet down.
    """


#: virtual points per node on the hash ring; more replicas smooth the
#: per-node share of key space at the cost of ring size
DEFAULT_REPLICAS = 64


def stable_hash(value: str) -> int:
    """Process-stable 64-bit hash (SHA-256 prefix, never ``hash()``)."""
    digest = hashlib.sha256(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring over node ids with virtual replicas."""

    def __init__(
        self,
        node_ids: Iterable[str] = (),
        *,
        replicas: int = DEFAULT_REPLICAS,
    ):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._nodes: set[str] = set()
        #: sorted virtual points; parallel lists for bisect
        self._point_hashes: list[int] = []
        self._point_nodes: list[str] = []
        for node_id in node_ids:
            self.add_node(node_id)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    @property
    def node_ids(self) -> list[str]:
        """Member node ids, sorted."""
        return sorted(self._nodes)

    def _points_for(self, node_id: str) -> list[int]:
        return [stable_hash(f"{node_id}#{i}") for i in range(self.replicas)]

    def add_node(self, node_id: str) -> None:
        """Insert the node's virtual points (~K/N keys move to it)."""
        if node_id in self._nodes:
            raise ValueError(f"node {node_id!r} is already on the ring")
        self._nodes.add(node_id)
        for point in self._points_for(node_id):
            index = bisect.bisect_left(self._point_hashes, point)
            self._point_hashes.insert(index, point)
            self._point_nodes.insert(index, node_id)

    def remove_node(self, node_id: str) -> None:
        """Withdraw the node's points (only its keys move away)."""
        if node_id not in self._nodes:
            raise KeyError(f"node {node_id!r} is not on the ring")
        self._nodes.discard(node_id)
        keep = [
            (point, node)
            for point, node in zip(self._point_hashes, self._point_nodes)
            if node != node_id
        ]
        self._point_hashes = [point for point, _ in keep]
        self._point_nodes = [node for _, node in keep]

    def node_for(self, key: str, *, exclude: Iterable[str] = ()) -> str:
        """The node owning ``key``: first ring point clockwise from it.

        With ``exclude``, the walk continues clockwise past excluded
        nodes to the next distinct owner — the consistent-hash failover
        rule, so one failed node only diverts its own keys and every
        diverted key goes to the key's ring successor.
        """
        if not self._nodes:
            raise ValueError("the ring has no nodes")
        excluded = set(exclude)
        eligible = self._nodes - excluded
        if not eligible:
            raise NoRoutableNodeError(
                f"every ring node is excluded ({sorted(excluded)})"
            )
        start = bisect.bisect_right(self._point_hashes, stable_hash(key))
        points = len(self._point_hashes)
        for offset in range(points):
            node = self._point_nodes[(start + offset) % points]
            if node not in excluded:
                return node
        raise NoRoutableNodeError("no eligible ring point found")

    def __repr__(self):
        return f"HashRing(nodes={len(self._nodes)}, replicas={self.replicas})"


class ClusterRouter:
    """Assigns jobs to node ids under one of :data:`ROUTING_POLICIES`.

    The router tracks predicted outstanding cost per node through a
    shared :class:`~repro.plan.OutstandingCost` (fed by :meth:`assign`,
    drained by :meth:`release`) so ``least_loaded`` stays correct
    without reaching into node internals and the autoscaler can read the
    same fleet-wide signal; the cluster releases a node's cost when it
    drains.  Down marks (:meth:`mark_down` / :meth:`mark_up`) carry node
    churn: a down node keeps its membership but receives no traffic and
    holds no ring points.
    """

    def __init__(
        self,
        policy: str,
        node_ids: Iterable[str],
        *,
        cost_model: ShapeCostModel | None = None,
        replicas: int = DEFAULT_REPLICAS,
    ):
        if policy not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {policy!r}; choose from {ROUTING_POLICIES}"
            )
        self.policy = policy
        self._node_ids: list[str] = sorted(node_ids)
        if not self._node_ids:
            raise ValueError("a router needs at least one node")
        self.ring = HashRing(self._node_ids, replicas=replicas)
        self.cost_model = cost_model or FunctionalProverCostModel()
        self.outstanding = OutstandingCost(self.cost_model)
        for node_id in self._node_ids:
            self.outstanding.track(node_id)
        self._down: set[str] = set()
        self._rr_next = 0
        # least_loaded argmin index: (cost, node_id) entries with lazy
        # invalidation — every cost change pushes a fresh entry, stale
        # ones are dropped when they surface (see _select_least_loaded)
        self._load_heap: list[tuple[float, str]] = []
        self._rebuild_load_index()

    @property
    def node_ids(self) -> list[str]:
        """Every member node id, down nodes included (sorted)."""
        return list(self._node_ids)

    @property
    def up_node_ids(self) -> list[str]:
        """Member node ids currently accepting traffic (sorted)."""
        return [n for n in self._node_ids if n not in self._down]

    @property
    def down_node_ids(self) -> list[str]:
        """Member node ids currently marked down (sorted)."""
        return sorted(self._down)

    @property
    def outstanding_s(self) -> dict[str, float]:
        """Predicted outstanding prove seconds per member node."""
        return self.outstanding.per_node_s

    # -- least_loaded index --------------------------------------------------
    def _rebuild_load_index(self) -> None:
        """Re-seed the argmin heap with one current entry per up node."""
        node_s = self.outstanding.node_s
        self._load_heap = [
            (node_s(n), n) for n in self._node_ids if n not in self._down
        ]
        heapq.heapify(self._load_heap)

    def _reindex_load(self, node_id: str) -> None:
        """Push ``node_id``'s current cost after any cost change.

        Old entries for the node become stale (their cost no longer
        matches) and are dropped lazily; a periodic rebuild bounds the
        garbage at a small multiple of the member count.
        """
        heap = self._load_heap
        if len(heap) > max(64, 8 * len(self._node_ids)):
            self._rebuild_load_index()
            return
        heapq.heappush(heap, (self.outstanding.node_s(node_id), node_id))

    def _select_least_loaded(self, exclude: Iterable[str]) -> str:
        """Heap argmin over predicted outstanding cost.

        An entry is *current* iff its node is a live up member and its
        cost equals the node's outstanding cost right now; anything
        else is stale garbage and is popped.  Current entries for
        excluded nodes are held aside and re-pushed, so the result is
        exactly the ``min((cost, node_id))`` of the old O(N) scan —
        including the node-id tie-break — at O(log n) amortized.
        """
        excluded = set(exclude)
        heap = self._load_heap
        outstanding = self.outstanding
        node_s = outstanding.node_s
        down = self._down
        held: list[tuple[float, str]] = []
        chosen: str | None = None
        while heap:
            cost, node = heap[0]
            if node not in outstanding or node in down or cost != node_s(node):
                heapq.heappop(heap)
                continue
            if node in excluded:
                held.append(heapq.heappop(heap))
                continue
            chosen = node
            break
        for entry in held:
            heapq.heappush(heap, entry)
        if chosen is None:
            # the index only runs dry when nothing is routable —
            # _candidates then raises the canonical error; otherwise
            # (an index bug) re-seed and fall back to the exact scan
            candidates = self._candidates(exclude)
            self._rebuild_load_index()
            return min(candidates, key=lambda n: (node_s(n), n))
        return chosen

    def add_node(self, node_id: str) -> None:
        """Join ``node_id`` as an up member."""
        if node_id in self.outstanding:
            raise ValueError(f"node {node_id!r} is already routed to")
        self.ring.add_node(node_id)
        self._node_ids = sorted(self._node_ids + [node_id])
        self.outstanding.track(node_id)
        self._reindex_load(node_id)
        self._rr_next = 0

    def remove_node(self, node_id: str) -> None:
        """Retire ``node_id`` from membership entirely."""
        if node_id not in self.outstanding:
            raise KeyError(f"node {node_id!r} is not routed to")
        if len(self._node_ids) == 1:
            raise ValueError("cannot remove the last node")
        if node_id not in self._down:
            self.ring.remove_node(node_id)
        self._down.discard(node_id)
        self._node_ids = [n for n in self._node_ids if n != node_id]
        self.outstanding.drop(node_id)
        self._rr_next = 0

    # -- churn ---------------------------------------------------------------
    def mark_down(self, node_id: str) -> None:
        """Stop routing to a crashed member; its ~K/N ring keys remap.

        Unlike :meth:`remove_node`, the node stays a member (so
        :meth:`mark_up` restores its exact ring points), and a whole
        fleet may legally be down at once — jobs then park until a
        recovery.  The node's outstanding cost is zeroed; the caller
        requeues its jobs.
        """
        if node_id not in self.outstanding:
            raise KeyError(f"node {node_id!r} is not routed to")
        if node_id in self._down:
            raise ValueError(f"node {node_id!r} is already down")
        self._down.add(node_id)
        self.ring.remove_node(node_id)
        self.outstanding.release(node_id)
        self._rr_next = 0

    def mark_up(self, node_id: str) -> None:
        """Resume routing to a recovered member (ring points return)."""
        if node_id not in self.outstanding:
            raise KeyError(f"node {node_id!r} is not routed to")
        if node_id not in self._down:
            raise ValueError(f"node {node_id!r} is not down")
        self._down.discard(node_id)
        self.ring.add_node(node_id)
        self._reindex_load(node_id)
        self._rr_next = 0

    # -- assignment ----------------------------------------------------------
    def job_cost_s(self, job: ProofJob) -> float:
        """Predicted prove seconds for routing bookkeeping only.

        Never stamps ``job.predicted_cost_s`` — that field belongs to
        the node's own service cost model, and a fleet-model stamp here
        would corrupt the service's predicted-vs-actual metrics.
        """
        return self.outstanding.job_cost_s(job)

    def _candidates(self, exclude: Iterable[str]) -> list[str]:
        blocked = self._down | set(exclude)
        out = [n for n in self._node_ids if n not in blocked]
        if not out:
            raise NoRoutableNodeError(
                "no routable node: "
                f"{len(self._down)} down, excluded {sorted(set(exclude))}"
            )
        return out

    def select(self, job: ProofJob, *, exclude: Iterable[str] = ()) -> str:
        """The node this job *would* go to (no bookkeeping).

        ``exclude`` temporarily bars specific nodes — the retry path
        uses it so a requeued job cannot return to the node that lost
        it, even if that node recovered in the meantime.
        """
        if self.policy == "least_loaded":
            # argmin outstanding, ties break by node id order — via the
            # lazy heap index, no per-assign scan of the member list
            return self._select_least_loaded(exclude)
        candidates = self._candidates(exclude)
        if self.policy == "round_robin":
            return candidates[self._rr_next % len(candidates)]
        return self.ring.node_for(job.circuit_key, exclude=exclude)

    def assign(self, job: ProofJob, *, exclude: Iterable[str] = ()) -> str:
        """Route ``job``: pick a node and record its predicted cost."""
        node_id = self.select(job, exclude=exclude)
        if self.policy == "round_robin":
            self._rr_next = (self._rr_next + 1) % len(self._candidates(exclude))
        self.outstanding.add(node_id, job)
        if self.policy == "least_loaded":
            self._reindex_load(node_id)
        return node_id

    def release(self, node_id: str, cost_s: float | None = None) -> None:
        """Drop drained cost from ``node_id`` (all of it by default)."""
        if node_id not in self.outstanding:
            raise KeyError(f"node {node_id!r} is not routed to")
        self.outstanding.release(node_id, cost_s)
        if self.policy == "least_loaded" and node_id not in self._down:
            self._reindex_load(node_id)

    def __repr__(self):
        nodes = len(self._node_ids)
        return f"ClusterRouter(policy={self.policy!r}, nodes={nodes})"
