"""Job-to-node routing: round-robin, least-loaded, fingerprint affinity.

The router decides which :class:`~repro.cluster.nodes.ProverNode` gets
each :class:`~repro.service.jobs.ProofJob`.  Three policies:

* ``round_robin`` — cycle through nodes in id order, ignoring cost and
  circuit structure.  The sharding baseline: even job counts, maximal
  index duplication.
* ``least_loaded`` — assign to the node with the smallest *predicted
  outstanding cost*: the sum of plan-predicted prove seconds
  (:class:`~repro.service.costing.JobCostModel`) of everything routed
  there but not yet drained.  Greedy argmin keeps the imbalance bound
  tight: no node's outstanding cost ever exceeds another's by more than
  one job at assignment time.
* ``affinity`` — consistent hashing on ``circuit_fingerprint`` via
  :class:`HashRing`, so every job proving one circuit structure lands on
  one node and the node's :class:`~repro.service.cache.IndexCache` (and
  its fixed-base MSM reuse) survives sharding.

:class:`HashRing` hashes with SHA-256, never Python's salted ``hash()``,
so placements are identical across runs, interpreters, and machines —
``tests/test_cluster_routing.py`` locks this across a process boundary.
Adding or removing a node only moves the keys that land on it
(~K/N of them), which is the whole point of hashing consistently.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable

from repro.plan.cost import FunctionalProverCostModel, ShapeCostModel
from repro.service.jobs import ProofJob

#: routing policy names accepted by :class:`ClusterRouter`
ROUTING_POLICIES = ("round_robin", "least_loaded", "affinity")

#: virtual points per node on the hash ring; more replicas smooth the
#: per-node share of key space at the cost of ring size
DEFAULT_REPLICAS = 64


def stable_hash(value: str) -> int:
    """Process-stable 64-bit hash (SHA-256 prefix, never ``hash()``)."""
    digest = hashlib.sha256(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring over node ids with virtual replicas."""

    def __init__(
        self,
        node_ids: Iterable[str] = (),
        *,
        replicas: int = DEFAULT_REPLICAS,
    ):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._nodes: set[str] = set()
        #: sorted virtual points; parallel lists for bisect
        self._point_hashes: list[int] = []
        self._point_nodes: list[str] = []
        for node_id in node_ids:
            self.add_node(node_id)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    @property
    def node_ids(self) -> list[str]:
        return sorted(self._nodes)

    def _points_for(self, node_id: str) -> list[int]:
        return [stable_hash(f"{node_id}#{i}") for i in range(self.replicas)]

    def add_node(self, node_id: str) -> None:
        if node_id in self._nodes:
            raise ValueError(f"node {node_id!r} is already on the ring")
        self._nodes.add(node_id)
        for point in self._points_for(node_id):
            index = bisect.bisect_left(self._point_hashes, point)
            self._point_hashes.insert(index, point)
            self._point_nodes.insert(index, node_id)

    def remove_node(self, node_id: str) -> None:
        if node_id not in self._nodes:
            raise KeyError(f"node {node_id!r} is not on the ring")
        self._nodes.discard(node_id)
        keep = [
            (point, node)
            for point, node in zip(self._point_hashes, self._point_nodes)
            if node != node_id
        ]
        self._point_hashes = [point for point, _ in keep]
        self._point_nodes = [node for _, node in keep]

    def node_for(self, key: str) -> str:
        """The node owning ``key``: first ring point clockwise from it."""
        if not self._nodes:
            raise ValueError("the ring has no nodes")
        index = bisect.bisect_right(self._point_hashes, stable_hash(key))
        if index == len(self._point_hashes):
            index = 0
        return self._point_nodes[index]

    def __repr__(self):
        return f"HashRing(nodes={len(self._nodes)}, replicas={self.replicas})"


class ClusterRouter:
    """Assigns jobs to node ids under one of :data:`ROUTING_POLICIES`.

    The router tracks predicted outstanding cost per node (fed by
    :meth:`assign`, released by :meth:`release`) so ``least_loaded``
    stays correct without reaching into node internals; the cluster
    releases a node's cost when it drains.
    """

    def __init__(
        self,
        policy: str,
        node_ids: Iterable[str],
        *,
        cost_model: ShapeCostModel | None = None,
        replicas: int = DEFAULT_REPLICAS,
    ):
        if policy not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {policy!r}; choose from {ROUTING_POLICIES}"
            )
        self.policy = policy
        self._node_ids: list[str] = sorted(node_ids)
        if not self._node_ids:
            raise ValueError("a router needs at least one node")
        self.ring = HashRing(self._node_ids, replicas=replicas)
        self.cost_model = cost_model or FunctionalProverCostModel()
        self.outstanding_s: dict[str, float] = {
            node_id: 0.0 for node_id in self._node_ids
        }
        self._rr_next = 0

    @property
    def node_ids(self) -> list[str]:
        return list(self._node_ids)

    def add_node(self, node_id: str) -> None:
        if node_id in self.outstanding_s:
            raise ValueError(f"node {node_id!r} is already routed to")
        self.ring.add_node(node_id)
        self._node_ids = sorted(self._node_ids + [node_id])
        self.outstanding_s[node_id] = 0.0
        self._rr_next = 0

    def remove_node(self, node_id: str) -> None:
        if node_id not in self.outstanding_s:
            raise KeyError(f"node {node_id!r} is not routed to")
        if len(self._node_ids) == 1:
            raise ValueError("cannot remove the last node")
        self.ring.remove_node(node_id)
        self._node_ids = [n for n in self._node_ids if n != node_id]
        del self.outstanding_s[node_id]
        self._rr_next = 0

    def job_cost_s(self, job: ProofJob) -> float:
        """Predicted prove seconds for routing bookkeeping only.

        Never stamps ``job.predicted_cost_s`` — that field belongs to
        the node's own service cost model, and a fleet-model stamp here
        would corrupt the service's predicted-vs-actual metrics.
        """
        circuit = job.circuit
        return self.cost_model.shape_cost_s(circuit.gate_type.name, circuit.num_vars)

    def select(self, job: ProofJob) -> str:
        """The node this job *would* go to (no bookkeeping)."""
        if self.policy == "round_robin":
            return self._node_ids[self._rr_next % len(self._node_ids)]
        if self.policy == "affinity":
            return self.ring.node_for(job.circuit_key)
        # least_loaded: argmin outstanding, ties break by node id order
        return min(self._node_ids, key=lambda n: (self.outstanding_s[n], n))

    def assign(self, job: ProofJob) -> str:
        """Route ``job``: pick a node and record its predicted cost."""
        node_id = self.select(job)
        if self.policy == "round_robin":
            self._rr_next = (self._rr_next + 1) % len(self._node_ids)
        self.outstanding_s[node_id] += self.job_cost_s(job)
        return node_id

    def release(self, node_id: str, cost_s: float | None = None) -> None:
        """Drop drained cost from ``node_id`` (all of it by default)."""
        if node_id not in self.outstanding_s:
            raise KeyError(f"node {node_id!r} is not routed to")
        if cost_s is None:
            self.outstanding_s[node_id] = 0.0
        else:
            remaining = self.outstanding_s[node_id] - cost_s
            self.outstanding_s[node_id] = max(0.0, remaining)

    def __repr__(self):
        nodes = len(self._node_ids)
        return f"ClusterRouter(policy={self.policy!r}, nodes={nodes})"
