"""Carbon- and power-aware scheduling for the proving fleet.

ROADMAP item 3: the paper's Table V power model
(:mod:`repro.hw.power`) stops at per-module watts, and nothing upstream
ever consumed them — the cluster sim, autoscaler, and admission
controller all optimize pure latency/goodput.  This package closes the
loop:

* :class:`~repro.carbon.trace.CarbonIntensityTrace` — a seeded
  grid-carbon-intensity signal (diurnal sinusoid × per-window noise ×
  optional step "grid events") with the same restartable-iterator
  contract as :class:`~repro.traffic.openloop.OpenLoopTraffic`;
* :class:`~repro.carbon.power.NodePowerModel` /
  :func:`~repro.carbon.power.node_watts` — per-node watts on top of the
  per-module Table V rollup, so every simulated busy-second prices
  joules and gCO₂;
* :class:`~repro.carbon.runtime.CarbonConfig` /
  :class:`~repro.carbon.runtime.CarbonRuntime` — the scheduling hooks
  the cluster engine consults: ``carbon_waiting`` (delay deferrable
  starts into low-intensity windows bounded by deadline slack), ``edd``
  (earliest-deadline-first node queues), and a fleet-level power cap
  that parks deferrable work at :class:`ProofPlan` phase boundaries to
  make room for realtime jobs.

The pennsail-style policy split (deferrable carbon-aware scheduling,
realtime power capping) is DESIGN.md §12.
"""

from repro.carbon.power import NodePowerModel, node_watts
from repro.carbon.runtime import CARBON_POLICIES, CarbonConfig, CarbonRuntime
from repro.carbon.trace import (
    DEFAULT_CARBON_PERIOD_S,
    DEFAULT_CARBON_STEP_S,
    JOULES_PER_KWH,
    CarbonIntensityTrace,
)

__all__ = [
    "CARBON_POLICIES",
    "CarbonConfig",
    "CarbonIntensityTrace",
    "CarbonRuntime",
    "DEFAULT_CARBON_PERIOD_S",
    "DEFAULT_CARBON_STEP_S",
    "JOULES_PER_KWH",
    "NodePowerModel",
    "node_watts",
]
