"""Carbon-aware scheduling state: config, policies, joule accounting.

:class:`CarbonConfig` is the declarative knob block a
:class:`~repro.cluster.core.ClusterConfig` carries;
:class:`CarbonRuntime` is the per-run state machine the cluster engine
consults.  The split of responsibilities follows the pennsail framing
(SNIPPETS.md): *deferrable* work is steered in time — ``carbon_waiting``
delays its starts into low-intensity windows bounded by deadline slack,
and a fleet power cap parks it at :class:`ProofPlan` phase boundaries —
while *realtime* work is never delayed for carbon, only (transiently)
for the cap, and preempts deferrable work to get under it.

The runtime never advances time and never touches the event heap; the
engine asks three kinds of question —

* **ordering** (:meth:`select_job`): which queued job should this idle
  node start, and should the start be held until a cleaner window;
* **capping** (:meth:`cap_allows`, :meth:`next_boundary`): may another
  node go busy under the fleet power cap, and where is the next
  checkpointable phase boundary of a running deferrable job;
* **pricing** (:meth:`account_segment`, :meth:`as_dict`): how many
  joules and grams did each busy segment burn against the trace.

With ``policy="none"`` and no cap the runtime is :attr:`passive`:
the engine skips every scheduling hook and only the pricing runs, which
is what makes the capless-parity test (bit-identical records and event
log vs. a carbon-free run) hold by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.carbon.power import NodePowerModel, node_watts
from repro.carbon.trace import JOULES_PER_KWH, CarbonIntensityTrace
from repro.plan.cost import plan_modmuls
from repro.plan.proof_plan import hyperplonk_plan
from repro.service.jobs import ProofJob, RequestClass

#: carbon scheduling policies accepted by :class:`CarbonConfig`
CARBON_POLICIES = ("none", "carbon_waiting", "edd")

#: slack under floating-point comparisons of watts and seconds
_EPS = 1e-9


@dataclass
class CarbonConfig:
    """Declarative carbon/power knobs for one cluster run."""

    #: the grid-intensity signal all pricing and policies read
    trace: CarbonIntensityTrace
    #: one of :data:`CARBON_POLICIES`
    policy: str = "none"
    #: node power model; None derives one from the fleet time model
    power: NodePowerModel | None = None
    #: fleet-wide draw cap in watts (None = uncapped)
    power_cap_w: float | None = None
    #: "low intensity" threshold for ``carbon_waiting`` (g/kWh);
    #: None defaults to the trace's base intensity
    low_threshold_g_per_kwh: float | None = None
    #: longest a deadline-less deferrable job may be held (model s);
    #: None defaults to one trace period
    max_wait_s: float | None = None

    def __post_init__(self):
        if self.policy not in CARBON_POLICIES:
            raise ValueError(
                f"unknown carbon policy {self.policy!r}; "
                f"choose from {CARBON_POLICIES}"
            )
        if self.power_cap_w is not None and self.power_cap_w <= 0:
            raise ValueError(f"power_cap_w must be > 0; got {self.power_cap_w}")
        if (
            self.low_threshold_g_per_kwh is not None
            and self.low_threshold_g_per_kwh <= 0
        ):
            raise ValueError(
                "low_threshold_g_per_kwh must be > 0; "
                f"got {self.low_threshold_g_per_kwh}"
            )
        if self.max_wait_s is not None and self.max_wait_s <= 0:
            raise ValueError(f"max_wait_s must be > 0; got {self.max_wait_s}")


class CarbonRuntime:
    """Per-run carbon state; see the module docstring for the contract."""

    def __init__(self, config: CarbonConfig, time_model):
        self.config = config
        self.trace = config.trace
        self.policy = config.policy
        self._time_model = time_model
        self.power = config.power or node_watts(time_model)
        self.power_cap_w = config.power_cap_w
        self.threshold_g_per_kwh = (
            config.low_threshold_g_per_kwh
            if config.low_threshold_g_per_kwh is not None
            else self.trace.base_g_per_kwh
        )
        self.max_wait_s = (
            config.max_wait_s
            if config.max_wait_s is not None
            else self.trace.period_s
        )
        if (
            self.power_cap_w is not None
            and self.power_cap_w < self.power.busy_w - _EPS
        ):
            raise ValueError(
                f"power_cap_w={self.power_cap_w} is below one busy node "
                f"({self.power.busy_w:.1f} W); the fleet could never prove"
            )
        #: node ids currently drawing busy (prove/install) power
        self._active: set[str] = set()
        #: per-shape cumulative prove-progress fractions at phase edges
        self._fractions: dict[tuple[str, int], tuple[float, ...]] = {}
        # gross accounting (lost segments included) + the lost slice
        self.energy_j = 0.0
        self.carbon_g = 0.0
        self.energy_lost_j = 0.0
        self.carbon_lost_g = 0.0
        # policy counters, bumped by the engine at the emitting site
        self.suspends = 0
        self.resumes = 0
        self.held_starts = 0
        self.cap_deferrals = 0
        self.cap_breaches = 0

    @property
    def passive(self) -> bool:
        """True when only pricing runs — no policy, no cap.

        The engine skips every scheduling hook for a passive runtime,
        which is what the capless-parity test relies on.
        """
        return self.policy == "none" and self.power_cap_w is None

    # -- busy-set tracking (the cap's view of the fleet) ----------------------
    def on_busy(self, node_id: str) -> None:
        """Record that ``node_id`` started drawing busy power."""
        self._active.add(node_id)

    def on_idle(self, node_id: str) -> None:
        """Record that ``node_id`` stopped drawing busy power."""
        self._active.discard(node_id)

    def draw_w(self, up_nodes: int) -> float:
        """Current fleet draw: busy rails plus idle draw of the rest."""
        busy = len(self._active)
        return self.power.busy_w * busy + self.power.idle_w * max(
            0, up_nodes - busy
        )

    def cap_allows(self, up_nodes: int) -> bool:
        """Whether one more node may go busy under the cap."""
        if self.power_cap_w is None:
            return True
        busy = len(self._active) + 1
        draw = self.power.busy_w * busy + self.power.idle_w * max(
            0, up_nodes - busy
        )
        return draw <= self.power_cap_w + _EPS

    @property
    def active_nodes(self) -> int:
        """How many nodes currently draw busy power."""
        return len(self._active)

    # -- ordering policies ----------------------------------------------------
    def _ready_s(
        self, node, job: ProofJob, now_s: float, respect_arrivals: bool
    ) -> float:
        """Mirror of the engine's earliest-start rule for ``job``."""
        arrival = job.arrival_s if respect_arrivals else 0.0
        base = now_s if respect_arrivals else 0.0
        return max(node.clock_s, arrival, base)

    def hold_until(self, job: ProofJob, t0: float) -> float | None:
        """Carbon-waiting hold for ``job`` ready at ``t0`` (None = start).

        Only deferrable jobs are ever held; the hold targets the next
        window at or below the low-intensity threshold, bounded by the
        job's deadline slack (cold-start cost reserved) or, with no
        deadline, by ``max_wait_s``.  Returns a strictly-later time or
        None — the engine never re-holds at the same instant, which is
        the loop-freedom argument for the waiting policy.
        """
        if job.request_class is not RequestClass.DEFERRABLE:
            return None
        if self.trace.intensity_at(t0) <= self.threshold_g_per_kwh:
            return None
        if job.deadline_s is not None:
            cold_s = self._cold_cost_s(job)
            latest = job.deadline_s - cold_s
            if latest <= t0:
                return None
        else:
            latest = t0 + self.max_wait_s
        start = self.trace.next_low_start(
            t0, self.threshold_g_per_kwh, latest
        )
        if start is None or start <= t0 + _EPS:
            return None
        return start

    def _cold_cost_s(self, job: ProofJob) -> float:
        """Worst-case (cache-miss) busy seconds for ``job``."""
        return self._time_model.install_s(job) + self._time_model.prove_s(job)

    def select_job(
        self, node, *, now_s: float, respect_arrivals: bool
    ) -> tuple[ProofJob | None, float | None]:
        """``(job to start next, hold-until time or None)`` for a node.

        * ``edd`` — earliest absolute deadline first (deadline-less
          jobs last), ties by job id; never holds.
        * ``carbon_waiting`` — realtime jobs first in queue order
          (never delayed for carbon — a drained backlog of deferrable
          work must not starve them); then the first deferrable job
          with no hold; if every queued job is held, the one whose
          hold fires earliest.
        * ``none`` — plain queue order (cap-only runs land here).
        """
        jobs = node.pending_jobs(respect_arrivals=respect_arrivals)
        if not jobs:
            return None, None
        if self.policy == "edd":
            job = min(
                jobs,
                key=lambda j: (
                    j.deadline_s if j.deadline_s is not None else float("inf"),
                    j.job_id,
                ),
            )
            return job, None
        if self.policy == "carbon_waiting":
            for job in jobs:
                if job.request_class is RequestClass.REALTIME:
                    return job, None
            best: tuple[float, int, ProofJob] | None = None
            for job in jobs:
                t0 = max(
                    self._ready_s(node, job, now_s, respect_arrivals), now_s
                )
                hold = self.hold_until(job, t0)
                if hold is None:
                    return job, None
                if best is None or (hold, job.job_id) < best[:2]:
                    best = (hold, job.job_id, job)
            assert best is not None
            return best[2], best[0]
        return jobs[0], None

    # -- suspend checkpoints --------------------------------------------------
    def _progress_fractions(self, job: ProofJob) -> tuple[float, ...]:
        """Cumulative prove-progress fractions at interior phase edges.

        Derived once per circuit shape from the modmul split of its
        :class:`~repro.plan.proof_plan.ProofPlan` — the checkpointable
        boundaries of the proof DAG, exclusive of 0 and 1.
        """
        key = (job.circuit.gate_type.name, job.circuit.num_vars)
        cached = self._fractions.get(key)
        if cached is not None:
            return cached
        muls = plan_modmuls(hyperplonk_plan(*key))
        total = sum(muls.values())
        fractions: list[float] = []
        running = 0.0
        for phase_muls in muls.values():
            running += phase_muls
            fraction = running / total
            if _EPS < fraction < 1.0 - _EPS:
                fractions.append(fraction)
        result = tuple(fractions)
        self._fractions[key] = result
        return result

    def next_boundary(self, flight, now_s: float) -> float | None:
        """Model time of the next checkpointable boundary of a flight.

        Progress marks are the end of the install (if any) plus each
        interior plan-phase edge scaled into the prove window.  Returns
        the first mark *strictly ahead* of current progress — so every
        suspension banks at least one phase of work, the termination
        argument for cap-driven preemption — or None when the job is
        already inside its last phase (cheaper to let it finish).
        """
        total = flight.install_s + flight.prove_s
        progress = flight.done_before_s + max(0.0, now_s - flight.start_s)
        marks: list[float] = []
        if flight.install_s > 0.0:
            marks.append(flight.install_s)
        marks.extend(
            flight.install_s + f * flight.prove_s
            for f in self._progress_fractions(flight.job)
        )
        for mark in marks:
            if mark > progress + _EPS and mark < total - _EPS:
                return flight.start_s + (mark - flight.done_before_s)
        return None

    # -- pricing --------------------------------------------------------------
    def account_segment(self, flight, end_s: float, *, lost: bool = False) -> None:
        """Price one contiguous busy segment ``[flight.start_s, end_s]``.

        The segment's overlap with the job's install window (progress
        ``[0, install_s]``) burns install watts, the rest prove watts;
        carbon integrates the trace over the segment's model-time span.
        Lost (crash-aborted) segments still burned real joules — they
        accrue into the gross totals *and* the ``lost`` slice, which
        :meth:`as_dict` nets out of carbon-per-proof.
        """
        seconds = end_s - flight.start_s
        if seconds <= 0.0:
            return
        done_start = flight.done_before_s
        done_end = done_start + seconds
        install_olap = max(
            0.0, min(done_end, flight.install_s) - min(done_start, flight.install_s)
        )
        energy = (
            install_olap * self.power.install_w
            + (seconds - install_olap) * self.power.prove_w
        )
        carbon = (
            (energy / seconds)
            * self.trace.integral_g_s_per_kwh(flight.start_s, end_s)
            / JOULES_PER_KWH
        )
        self.energy_j += energy
        self.carbon_g += carbon
        if lost:
            self.energy_lost_j += energy
            self.carbon_lost_g += carbon

    def as_dict(self, records, nodes) -> dict:
        """The carbon summary block for :func:`cluster_summary`.

        ``carbon_per_proof_g`` is attributional over *useful* busy work
        (gross minus crash-lost grams, over completed proofs); idle
        draw is reported separately so the policy benches compare how
        schedules move busy seconds, not fleet sizing.
        """
        makespan = max((r.finish_s for r in records), default=0.0)
        idle_s = sum(max(0.0, makespan - node.busy_s) for node in nodes)
        idle_energy = self.power.idle_w * idle_s
        idle_carbon = (
            idle_energy * self.trace.mean_intensity(0.0, makespan)
            / JOULES_PER_KWH
        )
        useful_carbon = self.carbon_g - self.carbon_lost_g
        return {
            "policy": self.policy,
            "power_model": self.power.name,
            "prove_w": round(self.power.prove_w, 6),
            "install_w": round(self.power.install_w, 6),
            "idle_w": round(self.power.idle_w, 6),
            "power_cap_w": self.power_cap_w,
            "low_threshold_g_per_kwh": round(self.threshold_g_per_kwh, 6),
            "trace_base_g_per_kwh": self.trace.base_g_per_kwh,
            "energy_j": round(self.energy_j, 6),
            "carbon_g": round(self.carbon_g, 6),
            "energy_lost_j": round(self.energy_lost_j, 6),
            "carbon_lost_g": round(self.carbon_lost_g, 6),
            "idle_energy_j": round(idle_energy, 6),
            "idle_carbon_g": round(idle_carbon, 6),
            "carbon_per_proof_g": (
                round(useful_carbon / len(records), 6) if records else 0.0
            ),
            "suspends": self.suspends,
            "resumes": self.resumes,
            "held_starts": self.held_starts,
            "cap_deferrals": self.cap_deferrals,
            "cap_breaches": self.cap_breaches,
        }

    def __repr__(self):
        return (
            f"CarbonRuntime(policy={self.policy!r}, "
            f"power={self.power.name!r}, cap={self.power_cap_w}, "
            f"carbon={self.carbon_g:.3f}g)"
        )
