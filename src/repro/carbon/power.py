"""Node-level watts on top of the per-module Table V power model.

:func:`repro.hw.power.accelerator_power` reproduces the paper's
per-module power column (area × density + HBM PHYs); a fleet scheduler
needs the next rollup — what one *node* draws while proving, while
(re)building a circuit index on the host, and while idle.
:class:`NodePowerModel` carries those three levels and
:func:`node_watts` derives them from a fleet time-model preset:

* ``accelerator`` — prove watts are the zkPHIRE exemplar's total
  (compute + SRAM + interconnect + HBM); install watts are the host CPU
  package that runs the Pippenger index build (installs are host-side
  by construction — see :mod:`repro.cluster.timemodel`).
* ``functional`` — both phases run on the host CPU, so prove and
  install draw the same package power.

Idle draw is a fixed fraction of the larger busy rail (clock-gated
datapath, powered PHYs/DRAM).  The model is deliberately phase-constant
within prove: per-phase watts would need the paper's per-module
activity factors, which Table V averages away; a
:class:`~repro.plan.proof_plan.ProofPlan` enters through the *phase
boundaries* the suspend path checkpoints at
(:mod:`repro.carbon.runtime`), not through the wattage.
"""

from __future__ import annotations

from dataclasses import dataclass

#: host CPU package watts while building + committing a circuit index
#: (a Pippenger sweep keeps a server package at its sustained TDP)
HOST_INSTALL_WATTS = 250.0

#: host CPU package watts for the all-functional (CPU-fleet) preset
FUNCTIONAL_NODE_WATTS = 350.0

#: idle draw as a fraction of the larger busy rail — clock-gated logic
#: plus always-on SRAM retention, PHYs, and fan overhead
IDLE_POWER_FRACTION = 0.12


@dataclass(frozen=True)
class NodePowerModel:
    """Per-node draw at the three levels the cluster sim distinguishes."""

    #: watts while the prove phases run (accelerator or host CPU)
    prove_w: float
    #: watts while a host-side index install runs
    install_w: float
    #: watts while the node is up but neither proving nor installing
    idle_w: float
    #: preset name (or "custom") carried into summaries
    name: str = "custom"

    def __post_init__(self):
        if self.prove_w <= 0 or self.install_w <= 0:
            raise ValueError("prove_w and install_w must be > 0")
        if self.idle_w < 0:
            raise ValueError("idle_w must be >= 0")

    @property
    def busy_w(self) -> float:
        """The peak busy rail — what the fleet power cap budgets per
        active node (a cap must hold at either phase's draw)."""
        return max(self.prove_w, self.install_w)

    def job_energy_j(self, install_s: float, prove_s: float) -> float:
        """Joules one job burns given its busy-second split."""
        return install_s * self.install_w + prove_s * self.prove_w

    @classmethod
    def accelerator(cls) -> "NodePowerModel":
        """The zkPHIRE exemplar node: Table V total + host installs."""
        from repro.hw.area import accelerator_area
        from repro.hw.config import AcceleratorConfig
        from repro.hw.power import accelerator_power

        config = AcceleratorConfig.exemplar()
        prove_w = accelerator_power(
            accelerator_area(config), config.bandwidth_gbps
        ).total
        return cls(
            prove_w=round(prove_w, 6),
            install_w=HOST_INSTALL_WATTS,
            idle_w=round(
                IDLE_POWER_FRACTION * max(prove_w, HOST_INSTALL_WATTS), 6
            ),
            name="accelerator",
        )

    @classmethod
    def functional(cls) -> "NodePowerModel":
        """An all-CPU node: one package power for both busy phases."""
        return cls(
            prove_w=FUNCTIONAL_NODE_WATTS,
            install_w=FUNCTIONAL_NODE_WATTS,
            idle_w=round(IDLE_POWER_FRACTION * FUNCTIONAL_NODE_WATTS, 6),
            name="functional",
        )


def node_watts(time_model) -> NodePowerModel:
    """The :class:`NodePowerModel` matching a fleet time model.

    Accepts a :class:`~repro.cluster.timemodel.FleetTimeModel` or a
    preset name, so the two pricing layers — seconds and watts — are
    derived from one declaration.  Custom time models must supply an
    explicit power model instead (see
    :class:`~repro.carbon.runtime.CarbonConfig`).
    """
    name = time_model if isinstance(time_model, str) else time_model.name
    if name == "accelerator":
        return NodePowerModel.accelerator()
    if name == "functional":
        return NodePowerModel.functional()
    raise ValueError(
        f"no node power preset for time model {name!r}; "
        "pass an explicit NodePowerModel in the CarbonConfig"
    )
