"""Seeded carbon-intensity traces: the grid signal schedulers react to.

A :class:`CarbonIntensityTrace` models grid carbon intensity in
gCO₂/kWh as a piecewise-constant signal over fixed ``step_s`` windows::

    intensity(window k) = base · diurnal(t_k) · noise(seed, k) · events(t_k)

where ``diurnal`` is a sinusoid with one "day" per ``period_s``,
``noise`` is a per-window multiplicative jitter drawn from a RNG seeded
by ``(seed, k)`` — O(1) random access *and* restartable iteration from
the same values — and ``events`` is an optional step function of grid
events (a coal plant coming online, a wind lull) that rescales
intensity from their onset times onward.

The trace follows the same restartable-iterator contract as
:class:`~repro.traffic.openloop.OpenLoopTraffic`: :meth:`events` (the
:class:`~repro.sim.sources.EventSource` hook) restarts from the seed on
every call, so two iterations of one trace yield identical
``(at_s, intensity)`` samples, and a scheduler that re-reads the trace
mid-run sees exactly the values an installed source delivered.  All
queries are pure functions of the constructor arguments — nothing here
touches global RNG state.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import Iterator, Sequence

from repro.sim.sources import EventSource

#: default diurnal period, model seconds — one "day" of the sinusoid
#: (matches :data:`repro.traffic.openloop.DEFAULT_DIURNAL_PERIOD_S`)
DEFAULT_CARBON_PERIOD_S = 240.0

#: default piecewise-constant window, model seconds
DEFAULT_CARBON_STEP_S = 5.0

#: joules per kilowatt-hour — converts W·s·(g/kWh) into grams
JOULES_PER_KWH = 3.6e6

#: forward-scan bound for :meth:`CarbonIntensityTrace.next_low_start`
_MAX_SCAN_WINDOWS = 1_000_000


class CarbonIntensityTrace(EventSource):
    """A seeded diurnal + noisy + event-stepped carbon-intensity signal.

    ``horizon_s`` bounds :meth:`events` when the trace is installed as a
    sim event source; point queries (:meth:`intensity_at`,
    :meth:`carbon_g`, :meth:`next_low_start`) work at any model time
    regardless.
    """

    def __init__(
        self,
        *,
        base_g_per_kwh: float = 300.0,
        amplitude: float = 0.5,
        period_s: float = DEFAULT_CARBON_PERIOD_S,
        noise: float = 0.05,
        step_s: float = DEFAULT_CARBON_STEP_S,
        seed: int = 0,
        grid_events: Sequence[tuple[float, float]] | None = None,
        horizon_s: float | None = None,
    ):
        if base_g_per_kwh <= 0:
            raise ValueError(
                f"base_g_per_kwh must be > 0; got {base_g_per_kwh}"
            )
        if not 0.0 <= amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0, 1); got {amplitude}")
        if period_s <= 0:
            raise ValueError(f"period_s must be > 0; got {period_s}")
        if not 0.0 <= noise < 1.0:
            raise ValueError(f"noise must be in [0, 1); got {noise}")
        if step_s <= 0:
            raise ValueError(f"step_s must be > 0; got {step_s}")
        if horizon_s is not None and horizon_s < 0:
            raise ValueError(f"horizon_s must be >= 0; got {horizon_s}")
        events = sorted(grid_events or (), key=lambda pair: pair[0])
        for at_s, mult in events:
            if at_s < 0:
                raise ValueError(f"grid event at_s must be >= 0; got {at_s}")
            if mult <= 0:
                raise ValueError(
                    f"grid event multiplier must be > 0; got {mult}"
                )
        self.base_g_per_kwh = base_g_per_kwh
        self.amplitude = amplitude
        self.period_s = period_s
        self.noise = noise
        self.step_s = step_s
        self.seed = seed
        self.grid_events = tuple(events)
        self._event_times = [at_s for at_s, _ in events]
        self.horizon_s = horizon_s

    # -- point queries -------------------------------------------------------
    def _noise_factor(self, window: int) -> float:
        """The multiplicative jitter of one window, from ``(seed, k)``.

        A fresh :class:`random.Random` keyed on the window index gives
        O(1) random access with the exact values an in-order iteration
        produces — the restartability contract hinges on this.
        """
        if self.noise == 0.0:
            return 1.0
        u = random.Random(f"{self.seed}:{window}").random()
        return 1.0 + self.noise * (2.0 * u - 1.0)

    def _event_multiplier(self, at_s: float) -> float:
        """The step-event rescale in force at ``at_s`` (1.0 = none)."""
        idx = bisect.bisect_right(self._event_times, at_s)
        return self.grid_events[idx - 1][1] if idx else 1.0

    def intensity_at(self, at_s: float) -> float:
        """Grid intensity (gCO₂/kWh) of the window containing ``at_s``.

        Constant within each ``step_s`` window (the sinusoid and the
        event step are sampled at the window midpoint), so any two
        queries inside one window agree — what makes scheduler
        decisions and energy integrals consistent.
        """
        window = int(max(at_s, 0.0) // self.step_s)
        mid = (window + 0.5) * self.step_s
        diurnal = 1.0 + self.amplitude * math.sin(
            2.0 * math.pi * mid / self.period_s
        )
        return (
            self.base_g_per_kwh
            * diurnal
            * self._noise_factor(window)
            * self._event_multiplier(mid)
        )

    # -- integration ---------------------------------------------------------
    def integral_g_s_per_kwh(self, start_s: float, end_s: float) -> float:
        """``∫ intensity dt`` over ``[start_s, end_s]`` (g·s/kWh).

        Exact for the piecewise-constant signal: each overlapped window
        contributes ``intensity × overlap``.
        """
        if end_s <= start_s:
            return 0.0
        start_s = max(start_s, 0.0)
        step = self.step_s
        first = int(start_s // step)
        last = int(end_s / step)
        total = 0.0
        for window in range(first, last + 1):
            lo = max(start_s, window * step)
            hi = min(end_s, (window + 1) * step)
            if hi > lo:
                total += self.intensity_at(window * step) * (hi - lo)
        return total

    def mean_intensity(self, start_s: float, end_s: float) -> float:
        """Time-averaged intensity over ``[start_s, end_s]`` (g/kWh)."""
        if end_s <= start_s:
            return self.base_g_per_kwh
        return self.integral_g_s_per_kwh(start_s, end_s) / (end_s - start_s)

    def carbon_g(self, start_s: float, end_s: float, watts: float) -> float:
        """Grams of CO₂ for a constant ``watts`` draw over a window."""
        return watts * self.integral_g_s_per_kwh(start_s, end_s) / JOULES_PER_KWH

    # -- scheduling helper ---------------------------------------------------
    def next_low_start(
        self, after_s: float, threshold_g_per_kwh: float, until_s: float
    ) -> float | None:
        """Earliest time in ``[after_s, until_s]`` with low intensity.

        Scans window-by-window for intensity ``<= threshold``; returns
        ``after_s`` itself when the current window already qualifies,
        and None when no qualifying window starts by ``until_s`` — the
        carbon-waiting policy then starts the job rather than burn its
        deadline slack.
        """
        if until_s < after_s:
            return None
        step = self.step_s
        window = int(max(after_s, 0.0) // step)
        for _ in range(_MAX_SCAN_WINDOWS):
            start = window * step
            if max(start, after_s) > until_s:
                return None
            if self.intensity_at(start) <= threshold_g_per_kwh:
                return max(start, after_s)
            window += 1
        return None

    # -- event-source contract ----------------------------------------------
    def events(self) -> Iterator[tuple[float, float]]:
        """Yield one ``(window start, intensity)`` sample per window.

        Restarts from the seed on every call (the
        :class:`~repro.traffic.openloop.OpenLoopTraffic` contract);
        requires ``horizon_s`` so an installed source terminates.
        """
        if self.horizon_s is None:
            raise ValueError(
                "set horizon_s to iterate the trace as an event source"
            )
        window = 0
        while window * self.step_s <= self.horizon_s:
            at_s = window * self.step_s
            yield (at_s, self.intensity_at(at_s))
            window += 1

    def __repr__(self):
        return (
            f"CarbonIntensityTrace(base={self.base_g_per_kwh}g/kWh, "
            f"amplitude={self.amplitude}, period={self.period_s}s, "
            f"seed={self.seed}, events={len(self.grid_events)})"
        )
