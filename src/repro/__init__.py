"""repro — a reproduction of zkPHIRE (HPCA 2026).

zkPHIRE is a programmable accelerator for zero-knowledge proofs over
high-degree, expressive gates.  This library reproduces the paper as two
coupled layers:

* a **functional ZKP stack** (``repro.fields``, ``repro.curves``,
  ``repro.mle``, ``repro.gates``, ``repro.sumcheck``,
  ``repro.hyperplonk``) — a correct, pure-Python HyperPlonk prover and
  verifier with custom high-degree gates, runnable at small scales;
* a **hardware performance model** (``repro.hw``, ``repro.workloads``,
  ``repro.experiments``) — analytical models of every zkPHIRE module,
  calibrated baselines, and the design-space exploration that regenerates
  every table and figure in the paper's evaluation.

See DESIGN.md for the system inventory (including the pluggable
field-vector backend layer behind the fast-path SumCheck prover) and
BENCH_sumcheck.json for the recorded fast-path perf trajectory.
"""

__version__ = "0.1.0"

from repro.fields import Fq, Fr

__all__ = ["Fr", "Fq", "__version__"]
