"""repro — a reproduction of zkPHIRE (HPCA 2026).

zkPHIRE is a programmable accelerator for zero-knowledge proofs over
high-degree, expressive gates.  This library reproduces the paper as
coupled layers:

* a **functional ZKP stack** (``repro.fields``, ``repro.curves``,
  ``repro.mle``, ``repro.gates``, ``repro.sumcheck``,
  ``repro.hyperplonk``) — a correct, pure-Python HyperPlonk prover and
  verifier with custom high-degree gates, runnable at small scales;
* a **proof-cost plan layer** (``repro.plan``) — one declarative
  :class:`~repro.plan.ProofPlan` phase DAG per circuit shape, priced by
  the hardware models, the CPU baseline, and the service's cost-aware
  scheduler instead of each re-deriving the protocol structure
  (DESIGN.md §6);
* a **proving service** (``repro.service``) — a batched, cached,
  multi-worker serving layer over the functional stack:
  :class:`~repro.service.ProvingService` drains
  :class:`~repro.service.ProofJob` streams through a content-addressed
  :class:`~repro.service.IndexCache` and a worker pool with cost-aware
  (``sjf`` / ``deadline``) drain policies, with traffic driven by
  :class:`~repro.service.TrafficGenerator` over the scenarios in
  ``repro.workloads`` (DESIGN.md §5, ``BENCH_service.json``,
  ``BENCH_scheduler.json``);
* a **sharded proving cluster** (``repro.cluster``, on the
  ``repro.sim`` discrete-event engine) — a simulated multi-node fleet
  above the service: :class:`~repro.cluster.ProvingCluster` routes job
  streams over N prover nodes under ``round_robin`` / ``least_loaded``
  / ``affinity`` policies, with consistent hashing on the circuit
  fingerprint keeping same-circuit traffic (and its index-cache wins)
  on one node, and a failure-aware scenario path — seeded node churn,
  deterministic crash retries, plan-cost-driven autoscaling
  (DESIGN.md §7–§8, ``BENCH_cluster.json``, ``BENCH_resilience.json``);
* a **hardware performance model** (``repro.hw``, ``repro.workloads``,
  ``repro.experiments``) — analytical models of every zkPHIRE module,
  calibrated baselines, and the design-space exploration that regenerates
  every table and figure in the paper's evaluation.

See DESIGN.md for the system inventory (including the pluggable
field-vector backend layer behind the fast-path SumCheck prover) and
BENCH_sumcheck.json for the recorded fast-path perf trajectory.
"""

from repro.cluster import ClusterConfig, ProvingCluster
from repro.fields import Fq, Fr
from repro.plan import FunctionalProverCostModel, ProofPlan, hyperplonk_plan
from repro.service import (
    IndexCache,
    JobCostModel,
    ProofJob,
    ProofResult,
    ProvingService,
    ServiceConfig,
    TrafficGenerator,
)

__version__ = "0.1.0"

__all__ = [
    "ClusterConfig",
    "Fr",
    "Fq",
    "FunctionalProverCostModel",
    "IndexCache",
    "JobCostModel",
    "ProofJob",
    "ProofResult",
    "ProofPlan",
    "ProvingCluster",
    "ProvingService",
    "ServiceConfig",
    "TrafficGenerator",
    "hyperplonk_plan",
    "__version__",
]
