"""Batch Evaluations + Polynomial Opening (the OpenCheck).

After the Gate-Identity and Wire-Identity SumChecks, the prover holds a
pile of evaluation claims "polynomial P_i equals v_i at point z_i" for
committed polynomials at (generally) different points.  Opening each
claim separately would cost one multilinear-KZG opening per claim;
HyperPlonk (and zkSpeed, which names the step *OpenCheck*) batches them:

1. draw a batching challenge α; run one SumCheck over
       g(x) = Σ_i α^i · P_i(x) · eq(x, z_i)
   whose hypercube sum is Σ_i α^i · v_i — this reduces all claims to
   evaluations of every P_i at the *single* SumCheck challenge point ρ;
2. draw a second challenge and open the random linear combination
   Σ_j β^j · P_j at ρ with one KZG opening.

The SumCheck in step 1 is exactly Table I row 24 (y_i · fr_i terms), run
on zkPHIRE's programmable SumCheck unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.fields.prime_field import PrimeField
from repro.fields.vector import get_backend
from repro.hyperplonk.commitment import Commitment, MultilinearKZG, Opening
from repro.mle.eq import build_eq_mle, eq_eval
from repro.mle.table import DenseMLE
from repro.mle.virtual import Term, VirtualPolynomial
from repro.sumcheck.prover import SumCheckProof, prove_sumcheck
from repro.sumcheck.transcript import Transcript
from repro.sumcheck.verifier import SumCheckError, verify_sumcheck
from repro.fields.counters import OpCounter


@dataclass(frozen=True)
class EvalClaim:
    """Claim: committed polynomial ``poly_name`` evaluates to ``value`` at
    ``point``."""

    poly_name: str
    point: tuple[int, ...]
    value: int


@dataclass
class OpenCheckProof:
    sumcheck: SumCheckProof
    combined_opening: Opening

    @property
    def size_bytes(self) -> int:
        sc = sum(32 * len(e) for e in self.sumcheck.round_evals)
        sc += 32 * len(self.sumcheck.final_evals)
        return sc + self.combined_opening.size_bytes


def _absorb_claims(transcript: Transcript, claims: Sequence[EvalClaim]) -> None:
    for claim in claims:
        transcript.absorb_bytes(b"opencheck/poly", claim.poly_name.encode())
        transcript.absorb_scalars(b"opencheck/point", claim.point)
        transcript.absorb_scalar(b"opencheck/value", claim.value)


def _batched_terms_and_claim(
    field: PrimeField, claims: Sequence[EvalClaim], alpha: int
) -> tuple[list[Term], int]:
    p = field.modulus
    terms = []
    total = 0
    weight = 1
    for i, claim in enumerate(claims):
        weight = weight * alpha % p
        terms.append(Term(weight, ((claim.poly_name, 1), (f"eq{i}", 1))))
        total = (total + weight * claim.value) % p
    return terms, total


def prove_opencheck(
    field: PrimeField,
    claims: Sequence[EvalClaim],
    polys: Mapping[str, DenseMLE],
    kzg: MultilinearKZG,
    transcript: Transcript,
    counter: OpCounter | None = None,
    backend=None,
) -> OpenCheckProof:
    """Batch-prove the claims (see module docstring).

    ``backend`` selects the field-vector backend for the batching
    SumCheck and the combined-polynomial random linear combination.
    """
    if not claims:
        raise ValueError("opencheck needs at least one claim")
    num_vars = len(claims[0].point)
    if any(len(c.point) != num_vars for c in claims):
        raise ValueError("all opencheck claims must share one arity")

    _absorb_claims(transcript, claims)
    alpha = transcript.challenge(b"opencheck/alpha")
    terms, claimed_sum = _batched_terms_and_claim(field, claims, alpha)

    mles: dict[str, DenseMLE] = {}
    for i, claim in enumerate(claims):
        mles[claim.poly_name] = polys[claim.poly_name]
        mles[f"eq{i}"] = build_eq_mle(field, claim.point, counter)
    vp = VirtualPolynomial(field, terms, mles)
    sc_proof = prove_sumcheck(
        vp, transcript, claim=claimed_sum, counter=counter, backend=backend
    )
    rho = sc_proof.challenges

    beta = transcript.challenge(b"opencheck/beta")
    unique = sorted({c.poly_name for c in claims})
    p = field.modulus
    be = get_backend(backend)
    combined = [0] * (1 << num_vars)
    w = 1
    for name in unique:
        w = w * beta % p
        combined = be.axpy(field, combined, w, polys[name].table)
    opening = kzg.open(DenseMLE(field, combined), rho)
    return OpenCheckProof(sumcheck=sc_proof, combined_opening=opening)


def verify_opencheck(
    field: PrimeField,
    claims: Sequence[EvalClaim],
    commitments: Mapping[str, Commitment],
    proof: OpenCheckProof,
    kzg: MultilinearKZG,
    transcript: Transcript,
) -> None:
    """Verify a batched opening; raises :class:`SumCheckError` on failure."""
    if not claims:
        raise SumCheckError("opencheck needs at least one claim")
    _absorb_claims(transcript, claims)
    alpha = transcript.challenge(b"opencheck/alpha")
    terms, claimed_sum = _batched_terms_and_claim(field, claims, alpha)

    if proof.sumcheck.claim % field.modulus != claimed_sum:
        raise SumCheckError("opencheck claim does not match batched values")
    rho = verify_sumcheck(field, terms, proof.sumcheck, transcript)

    # eq_i evaluations are public — recompute and compare
    for i, claim in enumerate(claims):
        expected = eq_eval(field, rho, claim.point)
        got = proof.sumcheck.final_evals.get(f"eq{i}")
        if got is None or got % field.modulus != expected:
            raise SumCheckError(f"eq evaluation mismatch for claim {i}")

    # P_i(ρ) values are certified by the combined opening
    beta = transcript.challenge(b"opencheck/beta")
    unique = sorted({c.poly_name for c in claims})
    p = field.modulus
    combined_value = 0
    combined_commitment: Commitment | None = None
    w = 1
    for name in unique:
        w = w * beta % p
        final = proof.sumcheck.final_evals.get(name)
        if final is None:
            raise SumCheckError(f"missing final evaluation for {name!r}")
        combined_value = (combined_value + w * final) % p
        scaled = commitments[name].scale(w)
        combined_commitment = (
            scaled if combined_commitment is None
            else combined_commitment.add(scaled)
        )

    if tuple(proof.combined_opening.point) != tuple(v % p for v in rho):
        raise SumCheckError("combined opening is at the wrong point")
    if proof.combined_opening.value % p != combined_value:
        raise SumCheckError("combined opening value mismatch")
    assert combined_commitment is not None
    if not kzg.verify(combined_commitment, proof.combined_opening):
        raise SumCheckError("combined KZG opening failed")
