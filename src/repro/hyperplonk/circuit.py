"""Plonk-style circuits with Vanilla and Jellyfish gates.

A circuit is a list of gate rows.  Each row has per-gate-type selector
values and ``num_witnesses`` wire slots; slots referencing the same
:class:`Wire` are copy-constrained (enforced by PermCheck).  The two gate
types match the paper exactly:

* **Vanilla** (Plonk, §II-C1): qL·w1 + qR·w2 − qO·w3 + qM·w1·w2 + qC = 0,
  3 witness slots, degree 3.
* **Jellyfish** (HyperPlonk, §II-C2): the degree-6 custom gate with
  linear, two multiplication, four quintic "hash" terms, an elliptic-curve
  term, output and constant terms, 5 witness slots.

The builder offers both raw ``add_gate`` and convenience helpers
(``add``, ``mul``, ``constant``, ``pow5``) used by the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.fields.prime_field import PrimeField
from repro.gates.library import gate_by_id
from repro.mle.table import DenseMLE


@dataclass(frozen=True)
class GateType:
    """A gate family: its selectors, witness arity, and Table I polys."""

    name: str
    selector_names: tuple[str, ...]
    num_witnesses: int
    zerocheck_gate_id: int
    permcheck_gate_id: int

    @property
    def witness_names(self) -> tuple[str, ...]:
        return tuple(f"w{i + 1}" for i in range(self.num_witnesses))

    def constraint_value(self, field: PrimeField,
                         selectors: Mapping[str, int],
                         witnesses: Sequence[int]) -> int:
        """Evaluate the gate identity at concrete values (no fr)."""
        spec = gate_by_id(self.zerocheck_gate_id)
        evals = {name: selectors.get(name, 0) for name in self.selector_names}
        evals.update({f"w{i + 1}": w for i, w in enumerate(witnesses)})
        evals["fr"] = 1
        total = 0
        p = field.modulus
        for m in spec.compiled.monomials:
            prod = m.coeff % p
            for name, power in m.factors:
                prod = prod * pow(evals[name] % p, power, p) % p
            total = (total + prod) % p
        return total


VANILLA = GateType(
    name="vanilla",
    selector_names=("qL", "qR", "qM", "qO", "qC"),
    num_witnesses=3,
    zerocheck_gate_id=20,
    permcheck_gate_id=21,
)

JELLYFISH = GateType(
    name="jellyfish",
    selector_names=("q1", "q2", "q3", "q4", "qM1", "qM2",
                    "qH1", "qH2", "qH3", "qH4", "qO", "qecc", "qC"),
    num_witnesses=5,
    zerocheck_gate_id=22,
    permcheck_gate_id=23,
)


@dataclass(frozen=True)
class Wire:
    """A circuit variable; slots holding the same Wire are copy-constrained."""

    index: int

    def __repr__(self):
        return f"Wire({self.index})"


@dataclass
class GateRow:
    selectors: dict[str, int]
    wires: list[Wire]


class CircuitBuilder:
    """Incrementally build a circuit, then :meth:`build` it.

    The builder tracks wire values alongside structure, so the finished
    :class:`Circuit` carries a complete witness assignment (suitable for
    tests and examples; a production API would separate the two).
    """

    def __init__(self, gate_type: GateType, field: PrimeField):
        self.gate_type = gate_type
        self.field = field
        self.rows: list[GateRow] = []
        self._values: list[int] = []
        self.zero = self.new_wire(0)  # shared padding/ground wire

    # -- wires ---------------------------------------------------------------
    def new_wire(self, value: int) -> Wire:
        self._values.append(value % self.field.modulus)
        return Wire(len(self._values) - 1)

    def value_of(self, wire: Wire) -> int:
        return self._values[wire.index]

    # -- raw gate -----------------------------------------------------------
    def add_gate(self, selectors: Mapping[str, int], wires: Sequence[Wire]) -> None:
        unknown = set(selectors) - set(self.gate_type.selector_names)
        if unknown:
            raise ValueError(f"unknown selectors for {self.gate_type.name}: {unknown}")
        if len(wires) != self.gate_type.num_witnesses:
            raise ValueError(
                f"{self.gate_type.name} gates take "
                f"{self.gate_type.num_witnesses} wires, got {len(wires)}"
            )
        p = self.field.modulus
        self.rows.append(GateRow({k: v % p for k, v in selectors.items()}, list(wires)))

    # -- convenience gates ----------------------------------------------------
    def _out_names(self) -> tuple[str, str, str, str]:
        """(left, right, mul, out) selector names for the gate type."""
        if self.gate_type is VANILLA or self.gate_type.name == "vanilla":
            return "qL", "qR", "qM", "qO"
        return "q1", "q2", "qM1", "qO"

    def _fill(self, used: Sequence[Wire]) -> list[Wire]:
        """Pad a [inputs..., output] wire list with zero wires before the
        output slot, up to the gate type's witness arity."""
        wires = list(used)
        while len(wires) < self.gate_type.num_witnesses:
            wires.insert(-1, self.zero)
        return wires

    def add(self, a: Wire, b: Wire) -> Wire:
        """c := a + b."""
        p = self.field.modulus
        c = self.new_wire((self.value_of(a) + self.value_of(b)) % p)
        ql, qr, _, qo = self._out_names()
        self.add_gate({ql: 1, qr: 1, qo: 1}, self._fill([a, b, c]))
        return c

    def mul(self, a: Wire, b: Wire) -> Wire:
        """c := a * b."""
        p = self.field.modulus
        c = self.new_wire(self.value_of(a) * self.value_of(b) % p)
        _, _, qm, qo = self._out_names()
        self.add_gate({qm: 1, qo: 1}, self._fill([a, b, c]))
        return c

    def constant(self, value: int) -> Wire:
        """c := value."""
        c = self.new_wire(value)
        _, _, _, qo = self._out_names()
        self.add_gate({"qC": value, qo: 1}, self._fill([self.zero, self.zero, c]))
        return c

    def assert_equal(self, a: Wire, b: Wire) -> None:
        """Constrain a == b via a subtraction gate outputting the zero wire."""
        ql, qr, _, qo = self._out_names()
        self.add_gate(
            {ql: 1, qr: -1, qo: 1},
            self._fill([a, b, self.zero]),
        )

    def pow5(self, a: Wire) -> Wire:
        """c := a^5 — a single Jellyfish gate (the Rescue S-box), or a
        mul-chain of three Vanilla gates.  This is the gate-count
        reduction §II-C2 describes."""
        p = self.field.modulus
        if self.gate_type.name == "jellyfish":
            c = self.new_wire(pow(self.value_of(a), 5, p))
            wires = [a] + [self.zero] * (self.gate_type.num_witnesses - 2) + [c]
            self.add_gate({"qH1": 1, "qO": 1}, wires)
            return c
        a2 = self.mul(a, a)
        a4 = self.mul(a2, a2)
        return self.mul(a4, a)

    # -- finalization ---------------------------------------------------------
    def build(self, min_gates: int = 1) -> "Circuit":
        """Pad with no-op gates to a power-of-two count and freeze."""
        if not self.rows:
            raise ValueError("cannot build an empty circuit")
        n = max(len(self.rows), min_gates, 2)
        size = 1 << (n - 1).bit_length()
        rows = list(self.rows)
        pad_wires = [self.zero] * self.gate_type.num_witnesses
        while len(rows) < size:
            rows.append(GateRow({}, list(pad_wires)))
        return Circuit(self.gate_type, self.field, rows, list(self._values))


class Circuit:
    """A frozen, padded circuit with witness assignment."""

    def __init__(self, gate_type: GateType, field: PrimeField,
                 rows: list[GateRow], values: list[int]):
        n = len(rows)
        if n < 2 or n & (n - 1):
            raise ValueError("circuit size must be a power of two >= 2")
        self.gate_type = gate_type
        self.field = field
        self.rows = rows
        self.values = values
        self.num_gates = n
        self.num_vars = n.bit_length() - 1

    # -- tables ----------------------------------------------------------------
    def selector_tables(self) -> dict[str, DenseMLE]:
        tables = {
            name: [row.selectors.get(name, 0) for row in self.rows]
            for name in self.gate_type.selector_names
        }
        return {name: DenseMLE(self.field, t) for name, t in tables.items()}

    def witness_tables(self) -> dict[str, DenseMLE]:
        cols: dict[str, list[int]] = {
            name: [] for name in self.gate_type.witness_names
        }
        for row in self.rows:
            for j, name in enumerate(self.gate_type.witness_names):
                cols[name].append(self.values[row.wires[j].index])
        return {name: DenseMLE(self.field, t) for name, t in cols.items()}

    def permutation_tables(self) -> dict[str, DenseMLE]:
        """σ_j tables: each slot's label maps to the next slot holding the
        same Wire (cyclic within each wire class).  Labels are
        slot = col * N + row."""
        n = self.num_gates
        k = self.gate_type.num_witnesses
        groups: dict[int, list[int]] = {}
        for row_idx, row in enumerate(self.rows):
            for col, wire in enumerate(row.wires):
                groups.setdefault(wire.index, []).append(col * n + row_idx)
        sigma = list(range(k * n))
        for slots in groups.values():
            for i, slot in enumerate(slots):
                sigma[slot] = slots[(i + 1) % len(slots)]
        return {
            f"sigma{col + 1}": DenseMLE(
                self.field, [sigma[col * n + row] for row in range(n)]
            )
            for col in range(k)
        }

    def identity_tables(self) -> dict[str, DenseMLE]:
        """id_j tables: the slot's own label (public, closed-form MLE)."""
        n = self.num_gates
        return {
            f"id{col + 1}": DenseMLE(
                self.field, [col * n + row for row in range(n)]
            )
            for col in range(self.gate_type.num_witnesses)
        }

    # -- sanity -------------------------------------------------------------
    def check_gates(self) -> list[int]:
        """Return indices of gate rows whose identity does NOT hold."""
        bad = []
        for idx, row in enumerate(self.rows):
            witnesses = [self.values[w.index] for w in row.wires]
            if self.gate_type.constraint_value(self.field, row.selectors,
                                               witnesses):
                bad.append(idx)
        return bad

    def __repr__(self):
        return (
            f"Circuit({self.gate_type.name}, {self.num_gates} gates, "
            f"μ={self.num_vars})"
        )
