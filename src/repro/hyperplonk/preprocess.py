"""Circuit preprocessing (the universal-setup "indexer").

HyperPlonk has a universal setup: the SRS is circuit-independent, and a
one-time preprocessing pass commits to the circuit's selector and
permutation polynomials.  The verifier needs only those commitments (plus
the closed-form identity polynomials), not the tables.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

from repro.fields.prime_field import PrimeField
from repro.hyperplonk.circuit import Circuit, GateType
from repro.hyperplonk.commitment import Commitment, MultilinearKZG
from repro.mle.table import DenseMLE


@dataclass
class ProverIndex:
    """Preprocessed data the prover keeps: tables + commitments."""

    gate_type: GateType
    num_vars: int
    selectors: dict[str, DenseMLE]
    sigmas: dict[str, DenseMLE]
    identities: dict[str, DenseMLE]
    commitments: dict[str, Commitment]


@dataclass
class VerifierIndex:
    """Preprocessed data the verifier keeps: commitments only."""

    gate_type: GateType
    num_vars: int
    commitments: dict[str, Commitment]

    def identity_eval(self, column: int, point: Sequence[int],
                      field: PrimeField) -> int:
        """Closed-form evaluation of id_col at an arbitrary point:
        id_col(x) = (col-1)·2^μ + Σ_j 2^j x_j (multilinear in x)."""
        p = field.modulus
        acc = (column - 1) * (1 << self.num_vars) % p
        for j, x in enumerate(point):
            acc = (acc + (1 << j) * (x % p)) % p
        return acc


def circuit_fingerprint(circuit: Circuit) -> str:
    """Content hash of everything preprocessing depends on.

    Covers the gate type, field, and every row's selectors and wiring —
    but **not** the witness values, so two instances of the same circuit
    structure proving different witnesses share one fingerprint (and hence
    one cached :class:`ProverIndex`/:class:`VerifierIndex` in
    :class:`repro.service.IndexCache`).
    """
    h = hashlib.sha256()
    h.update(b"repro/circuit-index/v1\x00")
    h.update(circuit.gate_type.name.encode())
    h.update(circuit.field.modulus.to_bytes(48, "big"))
    h.update(circuit.num_gates.to_bytes(8, "big"))
    for row in circuit.rows:
        for name in circuit.gate_type.selector_names:
            h.update(row.selectors.get(name, 0).to_bytes(48, "big"))
        for wire in row.wires:
            h.update(wire.index.to_bytes(8, "big"))
    return h.hexdigest()


def preprocess(circuit: Circuit, kzg: MultilinearKZG) -> tuple[ProverIndex, VerifierIndex]:
    """Commit to selectors and permutation tables; build both indices."""
    selectors = circuit.selector_tables()
    sigmas = circuit.permutation_tables()
    identities = circuit.identity_tables()
    commitments = {name: kzg.commit(mle) for name, mle in selectors.items()}
    commitments.update({name: kzg.commit(mle) for name, mle in sigmas.items()})
    prover_index = ProverIndex(
        gate_type=circuit.gate_type,
        num_vars=circuit.num_vars,
        selectors=selectors,
        sigmas=sigmas,
        identities=identities,
        commitments=commitments,
    )
    verifier_index = VerifierIndex(
        gate_type=circuit.gate_type,
        num_vars=circuit.num_vars,
        commitments=dict(commitments),
    )
    return prover_index, verifier_index
