"""The end-to-end HyperPlonk prover.

Protocol steps (§IV-A) and what each produces:

1. **Witness Commitments** — KZG commitments to the witness columns
   (MSMs; sparse in practice).
2. **Gate Identity** — ZeroCheck that the gate polynomial (Table I row
   20/22) vanishes on the cube, over selector + witness MLEs.
3. **Wire Identity** — challenges β, γ; the Permutation Quotient
   Generator builds N/D/φ/π̃; commitments to φ and π̃; challenge α; then
   a ZeroCheck of the PermCheck polynomial (Table I row 21/23).
4. **Batch Evaluations** — all evaluation claims produced by the two
   ZeroChecks are batched into a single OpenCheck SumCheck (Table I row
   24).
5. **Polynomial Opening** — one combined KZG opening at the OpenCheck
   point, plus four direct openings of the (μ+1)-variable product tree
   (its π/p1/p2 slices and the root).

The prover mirrors the verifier's transcript exactly, so the proof is
non-interactive via Fiat–Shamir.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from repro.fields.counters import OpCounter
from repro.gates.library import gate_by_id
from repro.hyperplonk.circuit import Circuit
from repro.hyperplonk.commitment import Commitment, MultilinearKZG, Opening
from repro.hyperplonk.opencheck import EvalClaim, OpenCheckProof, prove_opencheck
from repro.hyperplonk.permutation import build_permutation_data, permcheck_terms
from repro.hyperplonk.preprocess import ProverIndex
from repro.mle.virtual import Term
from repro.sumcheck.prover import SumCheckProof
from repro.sumcheck.transcript import Transcript
from repro.sumcheck.zerocheck import prove_zerocheck


def gate_identity_terms(gate_id: int) -> list[Term]:
    """Table I row ``gate_id`` with the fr factor stripped (the ZeroCheck
    wrapper re-adds it)."""
    compiled = gate_by_id(gate_id).compiled
    terms = []
    for m in compiled.monomials:
        factors = tuple((n, p) for n, p in m.factors if n != "fr")
        if len(factors) == len(m.factors):
            raise ValueError(f"gate {gate_id} monomial lacks the fr factor")
        terms.append(Term(m.coeff, factors))
    return terms


@dataclass
class HyperPlonkProof:
    """A complete HyperPlonk proof."""

    num_vars: int
    gate_type_name: str
    witness_commitments: dict[str, Commitment]
    phi_commitment: Commitment
    tree_commitment: Commitment
    gate_zerocheck: SumCheckProof
    perm_zerocheck: SumCheckProof
    perm_witness_evals: dict[str, int]
    perm_sigma_evals: dict[str, int]
    opencheck: OpenCheckProof
    tree_openings: dict[str, Opening] = dc_field(default_factory=dict)

    def size_bytes(self) -> int:
        """Serialized size: 48-byte G1 points, 32-byte scalars."""
        total = 48 * (len(self.witness_commitments) + 2)
        for sc in (self.gate_zerocheck, self.perm_zerocheck):
            total += 32  # claim
            total += sum(32 * len(e) for e in sc.round_evals)
            total += 32 * len(sc.final_evals)
        total += 32 * (len(self.perm_witness_evals) + len(self.perm_sigma_evals))
        total += self.opencheck.size_bytes
        total += sum(op.size_bytes for op in self.tree_openings.values())
        return total


class HyperPlonkProver:
    def __init__(
        self,
        circuit: Circuit,
        index: ProverIndex,
        kzg: MultilinearKZG,
        backend=None,
    ):
        """``backend`` selects the field-vector backend used by every
        inner SumCheck (see :mod:`repro.fields.vector`).  ``None`` keeps
        the original scalar path; ``"fused"`` is the fast path and emits
        a bit-identical proof."""
        if index.num_vars != circuit.num_vars:
            raise ValueError("index/circuit size mismatch")
        self.circuit = circuit
        self.index = index
        self.kzg = kzg
        self.backend = backend

    def prove(self, counter: OpCounter | None = None) -> HyperPlonkProof:
        field = self.circuit.field
        gate_type = self.circuit.gate_type
        transcript = Transcript(field, domain=b"hyperplonk")
        transcript.absorb_scalar(b"hp/num-vars", self.circuit.num_vars)
        transcript.absorb_bytes(b"hp/gate-type", gate_type.name.encode())

        # -- 1. witness commitments ---------------------------------------
        witness = self.circuit.witness_tables()
        witness_commitments = {}
        for name in gate_type.witness_names:
            witness_commitments[name] = self.kzg.commit(witness[name])
            transcript.absorb_point(b"hp/witness-commit", witness_commitments[name].point)
        if counter is not None:
            counter.bump("witness_msm", len(witness_commitments))

        # -- 2. gate identity (ZeroCheck) -----------------------------------
        gate_terms = gate_identity_terms(gate_type.zerocheck_gate_id)
        gate_mles = dict(self.index.selectors)
        gate_mles.update(witness)
        gate_zc = prove_zerocheck(
            field, gate_terms, gate_mles, transcript, counter,
            backend=self.backend,
        )
        rho_g = gate_zc.challenges

        # -- 3. wire identity (PermCheck) -----------------------------------
        beta = transcript.challenge(b"hp/beta")
        gamma = transcript.challenge(b"hp/gamma")
        perm = build_permutation_data(
            field, witness, self.index.identities, self.index.sigmas,
            beta, gamma, counter,
        )
        phi_commitment = self.kzg.commit(perm.phi)
        tree_commitment = self.kzg.commit(perm.prod_tree)
        transcript.absorb_point(b"hp/phi-commit", phi_commitment.point)
        transcript.absorb_point(b"hp/tree-commit", tree_commitment.point)
        if counter is not None:
            counter.bump("permcheck_msm", 2)

        alpha = transcript.challenge(b"hp/alpha")
        perm_terms = permcheck_terms(field, gate_type.num_witnesses, alpha)
        perm_mles = {"pi": perm.pi, "p1": perm.p1, "p2": perm.p2, "phi": perm.phi}
        perm_mles.update(perm.numerators)
        perm_mles.update(perm.denominators)
        perm_zc = prove_zerocheck(
            field, perm_terms, perm_mles, transcript, counter,
            backend=self.backend,
        )
        rho_p = perm_zc.challenges

        # auxiliary evaluations the verifier needs to reconstruct N_i/D_i
        perm_witness_evals = {
            name: witness[name].evaluate(rho_p) for name in gate_type.witness_names
        }
        perm_sigma_evals = {
            name: self.index.sigmas[name].evaluate(rho_p)
            for name in sorted(self.index.sigmas)
        }
        transcript.absorb_scalars(b"hp/perm-w-evals", perm_witness_evals.values())
        transcript.absorb_scalars(b"hp/perm-s-evals", perm_sigma_evals.values())

        # -- 4 & 5. batch evaluations + opening -----------------------------
        claims = self._build_claims(
            gate_zc, rho_g, rho_p, perm_witness_evals, perm_sigma_evals,
            phi_eval=perm_zc.final_evals["phi"],
        )
        polys = dict(self.index.selectors)
        polys.update(self.index.sigmas)
        polys.update(witness)
        polys["phi"] = perm.phi
        opencheck = prove_opencheck(
            field, claims, polys, self.kzg, transcript, counter,
            backend=self.backend,
        )

        tree_openings = {
            "pi": self.kzg.open(perm.prod_tree, list(rho_p) + [1]),
            "p1": self.kzg.open(perm.prod_tree, [0] + list(rho_p)),
            "p2": self.kzg.open(perm.prod_tree, [1] + list(rho_p)),
            "root": self.kzg.open(
                perm.prod_tree, [0] + [1] * self.circuit.num_vars
            ),
        }
        if counter is not None:
            counter.bump("opening_msm", 1 + len(tree_openings))

        return HyperPlonkProof(
            num_vars=self.circuit.num_vars,
            gate_type_name=gate_type.name,
            witness_commitments=witness_commitments,
            phi_commitment=phi_commitment,
            tree_commitment=tree_commitment,
            gate_zerocheck=gate_zc,
            perm_zerocheck=perm_zc,
            perm_witness_evals=perm_witness_evals,
            perm_sigma_evals=perm_sigma_evals,
            opencheck=opencheck,
            tree_openings=tree_openings,
        )

    def _build_claims(
        self,
        gate_zc: SumCheckProof,
        rho_g: list[int],
        rho_p: list[int],
        perm_witness_evals: dict[str, int],
        perm_sigma_evals: dict[str, int],
        phi_eval: int,
    ) -> list[EvalClaim]:
        """Canonical claim ordering shared with the verifier."""
        gate_names = sorted(
            set(self.index.selectors) | set(self.circuit.gate_type.witness_names)
        )
        claims = [
            EvalClaim(name, tuple(rho_g), gate_zc.final_evals[name])
            for name in gate_names
        ]
        claims += [
            EvalClaim(name, tuple(rho_p), perm_witness_evals[name])
            for name in sorted(perm_witness_evals)
        ]
        claims += [
            EvalClaim(name, tuple(rho_p), perm_sigma_evals[name])
            for name in sorted(perm_sigma_evals)
        ]
        claims.append(EvalClaim("phi", tuple(rho_p), phi_eval))
        return claims
