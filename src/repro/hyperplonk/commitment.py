"""Multilinear KZG (PST-style) polynomial commitments over BLS12-381 G1.

HyperPlonk pairs its SumCheck IOP with a pairing-based multilinear
commitment: committing is an MSM of the MLE table against SRS bases
g^{eq_x(s)} for a secret point s; opening at z produces one quotient
commitment per variable via f(X) - f(z) = Σ_i q_i(X) (X_i - z_i).

**Substitution (DESIGN.md §2):** verification of the pairing identity
e(C - v·G, H) = Σ_i e(Q_i, H^{s_i - z_i}) is performed *in the exponent*
using a :class:`TrapdoorSRS` that retains the toxic waste s: the verifier
checks  C - v·G == Σ_i (s_i - z_i)·Q_i  directly with group arithmetic.
This is the same algebraic identity the pairing would check (the pairing
merely lets a party *without* s check it), so soundness and every
experiment-relevant behaviour are preserved; only public verifiability is
simulated.  No experiment in the paper measures the verifier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import random
import threading

from repro.curves import AffinePoint, G1, G1_GENERATOR, msm_pippenger
from repro.curves.msm import FixedBaseTable, msm_fixed_base
from repro.fields import FR_MODULUS, Fr
from repro.mle import DenseMLE
from repro.mle.eq import build_eq_mle


@dataclass(frozen=True)
class Commitment:
    """A binding commitment to an MLE: one G1 point."""

    point: AffinePoint
    num_vars: int

    SIZE_BYTES = 48  # compressed G1

    def add(self, other: "Commitment") -> "Commitment":
        if self.num_vars != other.num_vars:
            raise ValueError("commitment arity mismatch")
        return Commitment(self.point.add(other.point), self.num_vars)

    def scale(self, k: int) -> "Commitment":
        return Commitment(self.point.scalar_mul(k), self.num_vars)


@dataclass(frozen=True)
class Opening:
    """An opening proof: the claimed value and μ quotient commitments."""

    point: tuple[int, ...]
    value: int
    quotients: tuple[AffinePoint, ...]

    @property
    def size_bytes(self) -> int:
        return 32 + 48 * len(self.quotients)


class TrapdoorSRS:
    """Structured reference string for ≤ ``max_vars`` variables.

    Bases: base[x] = g^{eq_x(s)} for every hypercube point x, where
    eq_x(s) = Π_i (x_i s_i + (1-x_i)(1-s_i)).

    Arity convention: an MLE with ν ≤ max_vars variables uses the *suffix*
    secrets s_{max-ν+1..max}.  This makes openings compose: opening a
    ν-variable polynomial peels variables off the front, so its i-th
    quotient has arity ν-i and naturally lives on the remaining (suffix)
    secrets — the telescoping identity
    f(s) - f(z) = Σ_i (s_i - z_i) · q_i(s_{i+1..ν}) then holds verbatim.

    The secret ``s`` is retained for exponent-space verification (see
    module docstring).  A production system would run a ceremony and
    discard it.
    """

    def __init__(self, max_vars: int, rng: random.Random | None = None):
        rng = rng or random.Random(0x5EED)
        self.max_vars = max_vars
        self.secret = [rng.randrange(1, FR_MODULUS) for _ in range(max_vars)]
        self._bases_cache: dict[int, list[AffinePoint]] = {}

    def secrets_for(self, num_vars: int) -> list[int]:
        """The suffix secrets an arity-``num_vars`` polynomial is bound to."""
        if num_vars > self.max_vars:
            raise ValueError(
                f"SRS supports up to {self.max_vars} vars, asked for {num_vars}"
            )
        return self.secret[self.max_vars - num_vars:]

    def bases(self, num_vars: int) -> list[AffinePoint]:
        """G1 bases g^{eq_x(suffix secrets)} for all 2^ν hypercube points."""
        if num_vars not in self._bases_cache:
            eq = build_eq_mle(Fr, self.secrets_for(num_vars))
            self._bases_cache[num_vars] = [
                G1_GENERATOR.scalar_mul(v) for v in eq.table
            ]
        return self._bases_cache[num_vars]

    def g2_elements(self, num_vars: int):
        """The *public* G2 verifying key for arity ν: (h, [s_i·h]) over
        the suffix secrets.  With these, opening verification needs no
        trapdoor — see :meth:`MultilinearKZG.verify_pairing`."""
        from repro.curves.pairing import G2Point

        h = G2Point.generator()
        return h, [h.scalar_mul(s) for s in self.secrets_for(num_vars)]


class MultilinearKZG:
    """Commit/open/verify for dense MLEs against a :class:`TrapdoorSRS`.

    ``fixed_base=True`` precomputes :class:`FixedBaseTable` windows for
    the generator and for SRS bases of arity ≤ ``fixed_base_max_vars``
    (lazily, per arity), replacing Pippenger for the prover's many small
    MSMs — opening quotients and 0-variable constants — whose cost is
    dominated by Pippenger's fixed ~255 running-sum doublings.  Results
    are bit-identical group elements either way; the mode only pays for
    itself when one KZG instance serves many requests, which is why
    :mod:`repro.service` enables it and one-shot callers don't.
    """

    def __init__(self, srs: TrapdoorSRS, fixed_base: bool = False,
                 fixed_base_max_vars: int = 4):
        self.srs = srs
        self.fixed_base = fixed_base
        self.fixed_base_max_vars = fixed_base_max_vars
        self._fb_tables: dict[int, list[FixedBaseTable]] = {}
        self._gen_table: FixedBaseTable | None = None
        # table precompute is expensive; serialize it so concurrent
        # thread-pool workers hitting a new arity don't build it twice
        self._fb_lock = threading.Lock()

    # -- fixed-base tables ---------------------------------------------------
    def _tables(self, num_vars: int) -> list[FixedBaseTable]:
        tables = self._fb_tables.get(num_vars)
        if tables is None:
            with self._fb_lock:
                tables = self._fb_tables.get(num_vars)
                if tables is None:
                    tables = [FixedBaseTable(pt)
                              for pt in self.srs.bases(num_vars)]
                    self._fb_tables[num_vars] = tables
        return tables

    def _generator_mul(self, k: int) -> AffinePoint:
        if not self.fixed_base:
            return G1_GENERATOR.scalar_mul(k)
        if self._gen_table is None:
            with self._fb_lock:
                if self._gen_table is None:
                    self._gen_table = FixedBaseTable(G1_GENERATOR)
        return self._gen_table.scalar_mul(k)

    # -- commit ------------------------------------------------------------
    def commit(self, mle: DenseMLE) -> Commitment:
        if mle.num_vars > self.srs.max_vars:
            raise ValueError(
                f"SRS supports up to {self.srs.max_vars} vars, "
                f"asked for {mle.num_vars}"
            )
        if all(v == 0 for v in mle.table):
            return Commitment(G1.infinity, mle.num_vars)
        if self.fixed_base and mle.num_vars <= self.fixed_base_max_vars:
            point = msm_fixed_base(mle.table, self._tables(mle.num_vars))
        else:
            point = msm_pippenger(mle.table, self.srs.bases(mle.num_vars))
        return Commitment(point, mle.num_vars)

    # -- open -----------------------------------------------------------------
    def open(self, mle: DenseMLE, point: Sequence[int]) -> Opening:
        """Open ``mle`` at ``point``: value + one quotient commitment per var.

        The quotients come from progressively fixing variables:
        with f_1 = f and f_{i+1} = f_i(z_i, ·),
        q_i(X_{i+1..μ}) = f_i(1, ·) - f_i(0, ·), and f(z) = f_{μ+1}.
        """
        if len(point) != mle.num_vars:
            raise ValueError("opening point arity mismatch")
        p = Fr.modulus
        quotients: list[AffinePoint] = []
        cur = mle
        for z in point:
            half = len(cur.table) // 2
            q_table = [
                (cur.table[2 * j + 1] - cur.table[2 * j]) % p for j in range(half)
            ]
            rem_vars = cur.num_vars - 1
            if half == 1:
                # 0-variable quotient: constant committed on the generator
                q_commit = (
                    G1.infinity
                    if q_table[0] == 0
                    else self._generator_mul(q_table[0])
                )
            else:
                q_mle = DenseMLE(Fr, q_table)
                q_commit = self.commit(q_mle).point
            quotients.append(q_commit)
            cur = cur.fix_first_variable(z)
        return Opening(point=tuple(v % p for v in point), value=cur.table[0],
                       quotients=tuple(quotients))

    # -- verify -------------------------------------------------------------
    def verify(self, commitment: Commitment, opening: Opening) -> bool:
        """Check C - v·G == Σ_i (s_i - z_i)·Q_i in G1 (exponent-space
        equivalent of the PST pairing product — see module docstring)."""
        if len(opening.point) != commitment.num_vars:
            return False
        p = Fr.modulus
        lhs = commitment.point.to_jacobian().add(
            self._generator_mul(opening.value).neg().to_jacobian()
        )
        rhs = G1.jacobian_infinity
        # An arity-ν commitment is bound to the suffix secrets; its i-th
        # quotient (arity ν-1-i) is bound to the suffix one deeper, which
        # is how `open` committed it.
        secrets = self.srs.secrets_for(commitment.num_vars)
        for i, (z, q) in enumerate(zip(opening.point, opening.quotients)):
            factor = (secrets[i] - z) % p
            rhs = rhs.add(q.to_jacobian().scalar_mul(factor))
        return lhs == rhs

    def verify_pairing(self, commitment: Commitment, opening: Opening) -> bool:
        """Publicly verify an opening with the real BLS12-381 pairing:

            e(C - v·G, h) · Π_i e(-Q_i, h^{s_i} - z_i·h) == 1

        This is the actual PST check — no trapdoor involved; the verifier
        uses only the public G2 verifying key.  Slower (one Miller loop
        per variable) but the ground truth :meth:`verify` simulates.
        """
        from repro.curves.pairing import multi_pairing

        if len(opening.point) != commitment.num_vars:
            return False
        h, s_h = self.srs.g2_elements(commitment.num_vars)
        c_minus_v = commitment.point.to_jacobian().add(
            G1_GENERATOR.scalar_mul(opening.value).neg().to_jacobian()
        ).to_affine()
        pairs = [(c_minus_v, h)]
        for z, q, hs in zip(opening.point, opening.quotients, s_h):
            if q.inf:
                continue
            g2_term = hs.add(h.scalar_mul(z).neg())
            pairs.append((q.neg(), g2_term))
        return multi_pairing(pairs).is_one()
