"""An end-to-end HyperPlonk prover and verifier (functional layer).

HyperPlonk [CBBZ23] is the SumCheck-based zkSNARK zkPHIRE accelerates.
Its five steps (§IV-A) map to this package as follows:

==========================  ==========================================
Protocol step               Module
==========================  ==========================================
Witness Commitments         :mod:`repro.hyperplonk.commitment` (PST
                            multilinear KZG over BLS12-381 G1, MSM-based)
Gate Identity (ZeroCheck)   :mod:`repro.hyperplonk.prover` +
                            :mod:`repro.sumcheck.zerocheck`
Wire Identity (PermCheck)   :mod:`repro.hyperplonk.permutation` (N/D/φ/π
                            construction — the Permutation Quotient
                            Generator's software analogue)
Batch Evaluations           :mod:`repro.hyperplonk.opencheck`
Polynomial Opening          :mod:`repro.hyperplonk.opencheck` +
                            :mod:`repro.hyperplonk.commitment`
==========================  ==========================================

Circuits are built with :mod:`repro.hyperplonk.circuit` using either
Vanilla (Plonk) or Jellyfish (high-degree custom) gates.

Scaling note: this layer is exact and sound but pure Python; it runs at
μ ≈ 4–12 (16–4096 gates).  Full-scale (2^24+) behaviour is the job of
the calibrated performance model in :mod:`repro.hw` (DESIGN.md §2).
"""

from repro.hyperplonk.circuit import (
    Circuit,
    CircuitBuilder,
    GateType,
    JELLYFISH,
    VANILLA,
)
from repro.hyperplonk.commitment import (
    Commitment,
    MultilinearKZG,
    Opening,
    TrapdoorSRS,
)
from repro.hyperplonk.prover import HyperPlonkProof, HyperPlonkProver
from repro.hyperplonk.verifier import HyperPlonkError, HyperPlonkVerifier
from repro.hyperplonk.preprocess import (
    ProverIndex,
    VerifierIndex,
    circuit_fingerprint,
    preprocess,
)

__all__ = [
    "Circuit",
    "CircuitBuilder",
    "GateType",
    "JELLYFISH",
    "VANILLA",
    "Commitment",
    "MultilinearKZG",
    "Opening",
    "TrapdoorSRS",
    "HyperPlonkProof",
    "HyperPlonkProver",
    "HyperPlonkError",
    "HyperPlonkVerifier",
    "ProverIndex",
    "VerifierIndex",
    "circuit_fingerprint",
    "preprocess",
]
