"""Wire-identity (PermCheck) data construction.

This is the software analogue of zkPHIRE's Permutation Quotient Generator
(§IV-B5): from witness columns w_i, identity labels id_i, permutation
labels σ_i and challenges β, γ it builds

* per-column Numerators  N_i(x) = w_i(x) + β·id_i(x) + γ,
* per-column Denominators D_i(x) = w_i(x) + β·σ_i(x) + γ,
* the Fraction MLE        φ(x) = Π_i N_i(x) / Π_i D_i(x)
  (batched modular inversion — the paper's batch-2 Montgomery scheme),
* the Product tree MLE    π̃ over μ+1 variables (built by the
  Multifunction Forest in hardware).

Product-tree layout (Quarks-style): the bottom half of π̃'s table holds
the 2^μ leaf values φ(x); entry 2^μ + t holds π̃[2t]·π̃[2t+1], packing the
reduction levels contiguously; the final slot 2^(μ+1)-1 is fixed to 1,
which makes the single constraint

    π(t) - p1(t)·p2(t) = 0   for all t in {0,1}^μ,

with π = π̃(·, X_{μ+1}=1), p1 = π̃(X_1=0, ·), p2 = π̃(X_1=1, ·),
*also* enforce that the root product equals 1 (at t = 2^μ - 1 the
constraint reads 1 = root · 1).  The permutation argument is sound iff
Π φ = 1, i.e. Π_i,x N_i = Π_i,x D_i under the β, γ randomization.

The full PermCheck ZeroCheck polynomial is then exactly Table I rows
21/23:  (π - p1·p2 + α·(φ·D_1..D_k - N_1..N_k)) · fr.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fields.counters import OpCounter
from repro.fields.prime_field import PrimeField, batch_inverse
from repro.mle.table import DenseMLE
from repro.mle.virtual import Term


@dataclass
class PermutationData:
    """Everything PermCheck commits to or sums over."""

    numerators: dict[str, DenseMLE]    # N1..Nk
    denominators: dict[str, DenseMLE]  # D1..Dk
    phi: DenseMLE                      # fraction MLE (μ vars)
    prod_tree: DenseMLE                # π̃ (μ+1 vars)

    @property
    def pi(self) -> DenseMLE:
        """π(t) = π̃(t, 1): the top half of the tree table."""
        half = len(self.prod_tree.table) // 2
        return DenseMLE(self.prod_tree.field, self.prod_tree.table[half:])

    @property
    def p1(self) -> DenseMLE:
        """p1(t) = π̃(0, t): even entries."""
        return self.prod_tree.fix_first_variable(0)

    @property
    def p2(self) -> DenseMLE:
        """p2(t) = π̃(1, t): odd entries."""
        return self.prod_tree.fix_first_variable(1)

    @property
    def root(self) -> int:
        """The grand product Π_x φ(x) — must be 1 for a valid wiring."""
        return self.prod_tree.table[-2]


def build_permutation_data(
    field: PrimeField,
    witness: dict[str, DenseMLE],
    identities: dict[str, DenseMLE],
    sigmas: dict[str, DenseMLE],
    beta: int,
    gamma: int,
    counter: OpCounter | None = None,
) -> PermutationData:
    """Construct N/D/φ/π̃ (the Permutation Quotient Generator's outputs)."""
    p = field.modulus
    beta %= p
    gamma %= p
    names = sorted(witness, key=lambda s: int(s[1:]))  # w1..wk
    k = len(names)
    size = len(next(iter(witness.values())).table)

    numerators: dict[str, DenseMLE] = {}
    denominators: dict[str, DenseMLE] = {}
    num_prod = [1] * size
    den_prod = [1] * size
    for col, wname in enumerate(names, start=1):
        w = witness[wname].table
        ident = identities[f"id{col}"].table
        sigma = sigmas[f"sigma{col}"].table
        n_t = [(w[i] + beta * ident[i] + gamma) % p for i in range(size)]
        d_t = [(w[i] + beta * sigma[i] + gamma) % p for i in range(size)]
        numerators[f"N{col}"] = DenseMLE(field, n_t)
        denominators[f"D{col}"] = DenseMLE(field, d_t)
        for i in range(size):
            num_prod[i] = num_prod[i] * n_t[i] % p
            den_prod[i] = den_prod[i] * d_t[i] % p
        if counter is not None:
            counter.count_mul(2 * size)          # β·id, β·σ
            counter.count_mul(2 * size)          # fold into running products
            counter.count_add(4 * size)

    den_inv = batch_inverse(field, den_prod)
    if counter is not None:
        counter.count_inv(size)
    phi_t = [num_prod[i] * den_inv[i] % p for i in range(size)]
    if counter is not None:
        counter.count_mul(size)

    tree = phi_t + [0] * size
    for t in range(size - 1):
        tree[size + t] = tree[2 * t] * tree[2 * t + 1] % p
    tree[2 * size - 1] = 1
    if counter is not None:
        counter.count_mul(size - 1)

    return PermutationData(
        numerators=numerators,
        denominators=denominators,
        phi=DenseMLE(field, phi_t),
        prod_tree=DenseMLE(field, tree),
    )


def permcheck_terms(field: PrimeField, num_columns: int, alpha: int) -> list[Term]:
    """The PermCheck gate identity (Table I rows 21/23), *without* fr:

        π - p1·p2 + α·(φ·D1···Dk - N1···Nk)

    ZeroCheck appends the fr factor.
    """
    p = field.modulus
    alpha %= p
    d_factors = tuple((f"D{i}", 1) for i in range(1, num_columns + 1))
    n_factors = tuple((f"N{i}", 1) for i in range(1, num_columns + 1))
    return [
        Term(1, (("pi", 1),)),
        Term(p - 1, (("p1", 1), ("p2", 1))),
        Term(alpha, (("phi", 1),) + d_factors),
        Term(p - alpha, n_factors),
    ]
