"""The HyperPlonk verifier.

Mirrors the prover's transcript step by step; every quantity the prover
claimed is either (a) recomputed from public data, (b) certified by a KZG
opening, or (c) pinned by a SumCheck round identity.  Any tampering
diverges the Fiat–Shamir challenges or fails an algebraic check.
"""

from __future__ import annotations

from typing import Sequence

from repro.fields.prime_field import PrimeField
from repro.hyperplonk.commitment import MultilinearKZG
from repro.hyperplonk.opencheck import EvalClaim, verify_opencheck
from repro.hyperplonk.permutation import permcheck_terms
from repro.hyperplonk.preprocess import VerifierIndex
from repro.hyperplonk.prover import HyperPlonkProof, gate_identity_terms
from repro.sumcheck.transcript import Transcript
from repro.sumcheck.verifier import SumCheckError
from repro.sumcheck.zerocheck import verify_zerocheck


class HyperPlonkError(AssertionError):
    """Raised when a HyperPlonk proof fails verification."""


class HyperPlonkVerifier:
    def __init__(self, field: PrimeField, index: VerifierIndex,
                 kzg: MultilinearKZG):
        self.field = field
        self.index = index
        self.kzg = kzg

    def verify(self, proof: HyperPlonkProof) -> None:
        """Raises :class:`HyperPlonkError` unless the proof is valid."""
        try:
            self._verify(proof)
        except SumCheckError as exc:
            raise HyperPlonkError(str(exc)) from exc

    # -- internal ------------------------------------------------------------
    def _verify(self, proof: HyperPlonkProof) -> None:
        field = self.field
        gate_type = self.index.gate_type
        if proof.num_vars != self.index.num_vars:
            raise HyperPlonkError("proof size does not match the index")
        if proof.gate_type_name != gate_type.name:
            raise HyperPlonkError("proof gate type does not match the index")

        transcript = Transcript(field, domain=b"hyperplonk")
        transcript.absorb_scalar(b"hp/num-vars", proof.num_vars)
        transcript.absorb_bytes(b"hp/gate-type", gate_type.name.encode())

        # -- 1. witness commitments ----------------------------------------
        for name in gate_type.witness_names:
            if name not in proof.witness_commitments:
                raise HyperPlonkError(f"missing witness commitment {name!r}")
            transcript.absorb_point(
                b"hp/witness-commit", proof.witness_commitments[name].point
            )

        # -- 2. gate identity -------------------------------------------------
        gate_terms = gate_identity_terms(gate_type.zerocheck_gate_id)
        rho_g = verify_zerocheck(field, gate_terms, proof.gate_zerocheck,
                                 transcript)

        # -- 3. wire identity ---------------------------------------------------
        beta = transcript.challenge(b"hp/beta")
        gamma = transcript.challenge(b"hp/gamma")
        transcript.absorb_point(b"hp/phi-commit", proof.phi_commitment.point)
        transcript.absorb_point(b"hp/tree-commit", proof.tree_commitment.point)
        alpha = transcript.challenge(b"hp/alpha")
        perm_terms = permcheck_terms(field, gate_type.num_witnesses, alpha)
        rho_p = verify_zerocheck(field, perm_terms, proof.perm_zerocheck,
                                 transcript)
        transcript.absorb_scalars(b"hp/perm-w-evals",
                                  proof.perm_witness_evals.values())
        transcript.absorb_scalars(b"hp/perm-s-evals",
                                  proof.perm_sigma_evals.values())

        self._check_permcheck_consistency(proof, rho_p, beta, gamma)

        # -- 4 & 5. batched openings -----------------------------------------
        claims = self._build_claims(proof, rho_g, rho_p)
        commitments = dict(self.index.commitments)
        commitments.update(proof.witness_commitments)
        commitments["phi"] = proof.phi_commitment
        verify_opencheck(field, claims, commitments, proof.opencheck,
                         self.kzg, transcript)
        self._check_tree_openings(proof, rho_p)

    def _check_permcheck_consistency(
        self, proof: HyperPlonkProof, rho_p: Sequence[int],
        beta: int, gamma: int,
    ) -> None:
        """The PermCheck ZeroCheck ran over derived MLEs (N_i, D_i, π
        slices).  Tie each of its final evaluations back to committed or
        public polynomials."""
        p = self.field.modulus
        finals = proof.perm_zerocheck.final_evals
        for col in range(1, self.index.gate_type.num_witnesses + 1):
            w_eval = proof.perm_witness_evals[f"w{col}"] % p
            sigma_eval = proof.perm_sigma_evals[f"sigma{col}"] % p
            id_eval = self.index.identity_eval(col, rho_p, self.field)
            expected_n = (w_eval + beta * id_eval + gamma) % p
            expected_d = (w_eval + beta * sigma_eval + gamma) % p
            if finals.get(f"N{col}", None) != expected_n:
                raise HyperPlonkError(f"numerator N{col} evaluation mismatch")
            if finals.get(f"D{col}", None) != expected_d:
                raise HyperPlonkError(f"denominator D{col} evaluation mismatch")

    def _check_tree_openings(self, proof: HyperPlonkProof,
                             rho_p: Sequence[int]) -> None:
        """Certify π/p1/p2 final evals as slices of the committed product
        tree, and check the grand-product root equals 1."""
        p = self.field.modulus
        finals = proof.perm_zerocheck.final_evals
        mu = proof.num_vars
        expected_points = {
            "pi": tuple(v % p for v in list(rho_p) + [1]),
            "p1": tuple(v % p for v in [0] + list(rho_p)),
            "p2": tuple(v % p for v in [1] + list(rho_p)),
            "root": tuple([0] + [1] * mu),
        }
        expected_values = {
            "pi": finals.get("pi"),
            "p1": finals.get("p1"),
            "p2": finals.get("p2"),
            "root": 1,
        }
        for name, point in expected_points.items():
            opening = proof.tree_openings.get(name)
            if opening is None:
                raise HyperPlonkError(f"missing product-tree opening {name!r}")
            if tuple(opening.point) != point:
                raise HyperPlonkError(f"tree opening {name!r} at wrong point")
            if opening.value % p != (expected_values[name] or 0) % p:
                raise HyperPlonkError(f"tree opening {name!r} value mismatch")
            if not self.kzg.verify(proof.tree_commitment, opening):
                raise HyperPlonkError(f"tree opening {name!r} failed KZG check")

    def _build_claims(self, proof: HyperPlonkProof, rho_g: Sequence[int],
                      rho_p: Sequence[int]) -> list[EvalClaim]:
        """Same canonical ordering as the prover (values taken from the
        proof, then certified by the OpenCheck)."""
        gate_type = self.index.gate_type
        selector_names = set(gate_type.selector_names)
        gate_names = sorted(selector_names | set(gate_type.witness_names))
        finals = proof.gate_zerocheck.final_evals
        missing = [n for n in gate_names if n not in finals]
        if missing:
            raise HyperPlonkError(f"gate zerocheck final evals missing {missing}")
        claims = [
            EvalClaim(name, tuple(rho_g), finals[name]) for name in gate_names
        ]
        claims += [
            EvalClaim(name, tuple(rho_p), proof.perm_witness_evals[name])
            for name in sorted(proof.perm_witness_evals)
        ]
        claims += [
            EvalClaim(name, tuple(rho_p), proof.perm_sigma_evals[name])
            for name in sorted(proof.perm_sigma_evals)
        ]
        phi_eval = proof.perm_zerocheck.final_evals.get("phi")
        if phi_eval is None:
            raise HyperPlonkError("perm zerocheck lacks phi evaluation")
        claims.append(EvalClaim("phi", tuple(rho_p), phi_eval))
        return claims
