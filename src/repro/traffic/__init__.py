"""Open-loop, multi-tenant traffic for the proving cluster (ISSUE 8).

The :mod:`repro.service.traffic` generator builds closed batches — every
job materialized up front, drained to completion.  This package models
the other regime: an *open-loop* source that keeps sending at 10⁵–10⁶
job scale whether or not the fleet keeps up, with tenants, SLO tiers,
admission control, and backpressure.

* :mod:`repro.traffic.tenants` — SLO tiers (gold/silver/bronze) and
  weighted tenant populations;
* :mod:`repro.traffic.openloop` — seeded diurnal + bursty Poisson
  arrival streams and the shared circuit-shape cache;
* :mod:`repro.traffic.engine` — the pumped
  :class:`~repro.traffic.engine.OpenLoopEngine` over the failure-aware
  cluster, wired to :mod:`repro.cluster.admission`;
* :mod:`repro.traffic.metrics` — goodput, shed rate, tail latency, and
  Jain fairness summaries.
"""

from repro.traffic.engine import OpenLoopEngine, make_admission
from repro.traffic.metrics import jain_fairness, traffic_summary
from repro.traffic.openloop import CircuitShapeCache, OpenLoopTraffic
from repro.traffic.tenants import (
    SLO_TIERS,
    SLOTier,
    TenantSpec,
    default_tenants,
)

__all__ = [
    "SLO_TIERS",
    "CircuitShapeCache",
    "OpenLoopEngine",
    "OpenLoopTraffic",
    "SLOTier",
    "TenantSpec",
    "default_tenants",
    "jain_fairness",
    "make_admission",
    "traffic_summary",
]
