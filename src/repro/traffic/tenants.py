"""Tenants and SLO tiers for multi-tenant open-loop traffic.

Production proving fleets serve many customers off one pool of
accelerators, and the interesting contention questions — who gets shed
first under overload, whose deadlines survive a burst — only exist once
requests carry an owner.  This module gives the open-loop subsystem its
ownership model:

* :class:`SLOTier` — a named service level: deadline slack, request
  class, and the *admission factor*, the fraction of the fleet's
  admission budget the tier is allowed to fill before its requests are
  shed (gold sheds last, bronze first — strict-priority load shedding
  expressed as nested budget caps).
* :class:`TenantSpec` — one customer: traffic weight (share of offered
  jobs), SLO tier, and a quota capping the share of admitted
  outstanding cost the tenant may occupy, so one noisy tenant cannot
  starve the rest even inside its tier.
* :func:`default_tenants` — a deterministic Zipf-weighted tenant
  population cycling through the tiers, used by the CLI and benches.

Everything here is plain declarative data; enforcement lives in
:mod:`repro.cluster.admission` and accounting in
:mod:`repro.traffic.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.service.jobs import RequestClass


@dataclass(frozen=True)
class SLOTier:
    """One service level: deadline slack, class, and shed priority."""

    name: str
    #: deadline = arrival + slack (None = the tier sets no deadlines)
    deadline_slack_s: float | None
    #: fraction of the fleet admission budget this tier may fill; lower
    #: factors hit their cap earlier, so they shed first under overload
    admission_factor: float
    request_class: RequestClass

    def __post_init__(self):
        if not 0.0 < self.admission_factor <= 1.0:
            raise ValueError(
                f"admission_factor must be in (0, 1]; got {self.admission_factor}"
            )


#: the three standard tiers: gold sheds last and gets the tightest
#: deadlines; bronze is deferrable batch work that absorbs overload
SLO_TIERS: dict[str, SLOTier] = {
    "gold": SLOTier(
        name="gold",
        deadline_slack_s=2.0,
        admission_factor=1.0,
        request_class=RequestClass.REALTIME,
    ),
    "silver": SLOTier(
        name="silver",
        deadline_slack_s=4.0,
        admission_factor=0.85,
        request_class=RequestClass.REALTIME,
    ),
    "bronze": SLOTier(
        name="bronze",
        deadline_slack_s=8.0,
        admission_factor=0.7,
        request_class=RequestClass.DEFERRABLE,
    ),
}

#: tier assignment order for generated tenant populations
_TIER_CYCLE = ("gold", "silver", "bronze")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: traffic share, SLO tier, and an outstanding quota."""

    name: str
    #: relative share of offered traffic (normalized across tenants)
    weight: float
    tier: SLOTier
    #: max fraction of the fleet admission budget this tenant's
    #: admitted-but-unfinished cost may occupy
    quota_fraction: float

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError(f"weight must be > 0; got {self.weight}")
        if not 0.0 < self.quota_fraction <= 1.0:
            raise ValueError(
                f"quota_fraction must be in (0, 1]; got {self.quota_fraction}"
            )


def default_tenants(n: int) -> list[TenantSpec]:
    """A deterministic ``n``-tenant population for benches and the CLI.

    Weights follow a Zipf law (tenant ``k`` gets weight ``1/k`` — a few
    heavy tenants, a long light tail), tiers cycle gold → silver →
    bronze, and each quota is twice the tenant's fair traffic share
    (capped at 1.0): enough slack that quotas only bind when a tenant
    bursts well past its share.
    """
    if n < 1:
        raise ValueError(f"need at least one tenant; got {n}")
    weights = [1.0 / (k + 1) for k in range(n)]
    total = sum(weights)
    return [
        TenantSpec(
            name=f"tenant-{k}",
            weight=weights[k],
            tier=SLO_TIERS[_TIER_CYCLE[k % len(_TIER_CYCLE)]],
            quota_fraction=min(1.0, 2.0 * weights[k] / total),
        )
        for k in range(n)
    ]
