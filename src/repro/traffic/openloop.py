"""Seeded open-loop arrival generation at 10⁵–10⁶ job scale.

The closed batches of :class:`~repro.service.traffic.TrafficGenerator`
top out around 10² jobs because every job synthesizes its own circuit.
Open-loop scale needs two changes:

* :class:`CircuitShapeCache` — circuit *structure* is a pure function
  of ``(gate family, log2 size)``, so one shared
  :class:`~repro.hyperplonk.circuit.Circuit` per shape (fingerprint
  precomputed once) serves every job of that shape.  Model-time runs
  never read the witness, and the cluster's index cache keys on the
  fingerprint either way.
* :class:`OpenLoopTraffic` — a lazy, seeded generator of
  :class:`~repro.service.jobs.ProofJob` streams whose arrival process
  is a time-varying Poisson process: a diurnal sinusoid times a
  deterministic burst square-wave, sampled by thinning against the
  peak rate, so the seed alone fixes every arrival instant.  Jobs are
  yielded one at a time — the open-loop engine pumps the next arrival
  only when the previous one fires, so a 10⁶-job run never holds the
  whole stream in memory.

A recorded arrival trace (``arrival_trace=[...]``) replaces the Poisson
process for replay-style runs; tenancy, shapes, and classes still come
from the seeded stream.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, Sequence

from repro.hyperplonk.circuit import Circuit
from repro.hyperplonk.preprocess import circuit_fingerprint
from repro.service.jobs import ProofJob
from repro.service.traffic import GATE_TYPES, synthesize_circuit
from repro.traffic.tenants import TenantSpec, default_tenants
from repro.workloads import TrafficScenario, scenario_by_name

#: default diurnal period, model seconds — one "day" of the sinusoid
DEFAULT_DIURNAL_PERIOD_S = 240.0

#: default burst square-wave: bursts this long ...
DEFAULT_BURST_DURATION_S = 5.0

#: ... covering this fraction of model time
DEFAULT_BURST_FRACTION = 0.1


class CircuitShapeCache:
    """One shared circuit (and fingerprint) per (gate, μ) shape."""

    def __init__(self):
        self._circuits: dict[tuple[str, int], Circuit] = {}
        self._keys: dict[tuple[str, int], str] = {}

    def get(self, gate_name: str, log2_gates: int) -> tuple[Circuit, str]:
        """The cached ``(circuit, fingerprint)`` for one shape."""
        shape = (gate_name, log2_gates)
        if shape not in self._circuits:
            circuit = synthesize_circuit(
                GATE_TYPES[gate_name], log2_gates, witness_seed=0
            )
            self._circuits[shape] = circuit
            self._keys[shape] = circuit_fingerprint(circuit)
        return self._circuits[shape], self._keys[shape]

    def __len__(self) -> int:
        return len(self._circuits)


class OpenLoopTraffic:
    """A seeded open-loop job stream with diurnal + bursty arrivals.

    The instantaneous arrival rate is::

        rate(t) = rate_rps
                  * (1 + diurnal_amplitude * sin(2πt / diurnal_period_s))
                  * (burst_mult  if t is inside a burst window  else 1)

    Burst windows are deterministic: the first ``burst_duration_s`` of
    every ``burst_duration_s / burst_fraction`` period.  Arrivals are
    sampled by Poisson thinning against the constant peak rate, so one
    ``random.Random(seed)`` fixes the whole stream — arrival instants,
    tenant draws, shapes, and classes alike.

    The stream ends after ``max_jobs`` jobs or past ``horizon_s`` model
    seconds, whichever comes first (at least one must be set).
    """

    def __init__(
        self,
        scenario: TrafficScenario | str,
        *,
        seed: int = 0,
        tenants: Sequence[TenantSpec] | None = None,
        rate_rps: float | None = None,
        diurnal_amplitude: float = 0.5,
        diurnal_period_s: float = DEFAULT_DIURNAL_PERIOD_S,
        burst_mult: float = 3.0,
        burst_fraction: float = DEFAULT_BURST_FRACTION,
        burst_duration_s: float = DEFAULT_BURST_DURATION_S,
        max_jobs: int | None = None,
        horizon_s: float | None = None,
        arrival_trace: Sequence[float] | None = None,
        backend: str | None = None,
    ):
        if isinstance(scenario, str):
            scenario = scenario_by_name(scenario)
        if not 0.0 <= diurnal_amplitude < 1.0:
            raise ValueError(
                f"diurnal_amplitude must be in [0, 1); got {diurnal_amplitude}"
            )
        if burst_mult < 1.0:
            raise ValueError(f"burst_mult must be >= 1; got {burst_mult}")
        if not 0.0 < burst_fraction <= 1.0:
            raise ValueError(
                f"burst_fraction must be in (0, 1]; got {burst_fraction}"
            )
        if burst_duration_s <= 0:
            raise ValueError(
                f"burst_duration_s must be > 0; got {burst_duration_s}"
            )
        if max_jobs is None and horizon_s is None and arrival_trace is None:
            raise ValueError("set max_jobs and/or horizon_s (or a trace)")
        self.scenario = scenario
        self.seed = seed
        self.tenants = list(tenants) if tenants is not None else default_tenants(3)
        self.rate_rps = rate_rps if rate_rps is not None else scenario.rate_rps
        if self.rate_rps <= 0:
            raise ValueError(f"rate_rps must be > 0; got {self.rate_rps}")
        self.diurnal_amplitude = diurnal_amplitude
        self.diurnal_period_s = diurnal_period_s
        self.burst_mult = burst_mult
        self.burst_fraction = burst_fraction
        self.burst_duration_s = burst_duration_s
        self.max_jobs = max_jobs
        self.horizon_s = horizon_s
        self.arrival_trace = (
            sorted(arrival_trace) if arrival_trace is not None else None
        )
        self.backend = backend
        self.shapes = CircuitShapeCache()

    # -- arrival process -----------------------------------------------------
    def in_burst(self, at_s: float) -> bool:
        """Whether model time ``at_s`` falls inside a burst window."""
        period = self.burst_duration_s / self.burst_fraction
        return (at_s % period) < self.burst_duration_s

    def rate_at(self, at_s: float) -> float:
        """The instantaneous arrival rate at model time ``at_s``."""
        diurnal = 1.0 + self.diurnal_amplitude * math.sin(
            2.0 * math.pi * at_s / self.diurnal_period_s
        )
        burst = self.burst_mult if self.in_burst(at_s) else 1.0
        return self.rate_rps * diurnal * burst

    @property
    def peak_rate_rps(self) -> float:
        """The thinning envelope: the largest rate ``rate_at`` can reach."""
        return self.rate_rps * (1.0 + self.diurnal_amplitude) * self.burst_mult

    def _arrivals(self, rng: random.Random) -> Iterator[float]:
        if self.arrival_trace is not None:
            yield from self.arrival_trace
            return
        peak = self.peak_rate_rps
        t = 0.0
        while True:
            t += rng.expovariate(peak)
            if rng.random() * peak < self.rate_at(t):
                yield t

    # -- job stream ----------------------------------------------------------
    def jobs(self) -> Iterator[ProofJob]:
        """The seeded job stream, lazily (one job per ``next()``).

        Every call restarts the stream from the seed — two iterations
        of one generator object yield identical jobs, which is what
        makes admission-vs-no-admission comparisons equal-seed.
        """
        rng = random.Random(self.seed)
        scenario = self.scenario
        tenant_names = [t.name for t in self.tenants]
        tenant_weights = [t.weight for t in self.tenants]
        tenant_by_name = {t.name: t for t in self.tenants}
        gate_names = [g for g, _ in scenario.gate_mix]
        gate_weights = [w for _, w in scenario.gate_mix]
        sizes = [s for s, _ in scenario.size_weights]
        size_weights = [w for _, w in scenario.size_weights]
        produced = 0
        for arrival in self._arrivals(rng):
            if self.max_jobs is not None and produced >= self.max_jobs:
                return
            if self.horizon_s is not None and arrival > self.horizon_s:
                return
            tenant_name = rng.choices(tenant_names, weights=tenant_weights)[0]
            tenant = tenant_by_name[tenant_name]
            gate_name = rng.choices(gate_names, weights=gate_weights)[0]
            log2 = rng.choices(sizes, weights=size_weights)[0]
            circuit, key = self.shapes.get(gate_name, log2)
            tier = tenant.tier
            deadline = (
                arrival + tier.deadline_slack_s
                if tier.deadline_slack_s is not None
                else None
            )
            produced += 1
            yield ProofJob(
                job_id=0,
                circuit=circuit,
                backend=self.backend,
                request_class=tier.request_class,
                arrival_s=arrival,
                deadline_s=deadline,
                tag=f"{scenario.name}/{gate_name}-mu{log2}",
                circuit_key=key,
                tenant=tenant_name,
            )

    def max_vars(self) -> int:
        """The largest μ this scenario can draw (for sizing the SRS)."""
        return self.scenario.max_log2_gates

    def __repr__(self):
        return (
            f"OpenLoopTraffic({self.scenario.name!r}, seed={self.seed}, "
            f"rate={self.rate_rps}rps, tenants={len(self.tenants)})"
        )
