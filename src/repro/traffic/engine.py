"""The open-loop cluster engine: pumped arrivals, admission, backpressure.

:class:`OpenLoopEngine` extends the failure-aware
:class:`~repro.cluster.engine.ClusterEngine` with an *arrival pump*: the
next job is pulled from an :class:`~repro.traffic.openloop.OpenLoopTraffic`
stream only when the previous arrival has fired, via the sim core's
allocation-light ``schedule_fast`` path (arrival events are never
cancelled).  A 10⁵–10⁶ job run therefore holds one job ahead of the
clock instead of the whole stream — this is what ROADMAP item 4 calls
"open-loop", and it is also the load pattern that motivated the
engine's fast path in the first place.

On top of the pump:

* **admission** — when an
  :class:`~repro.cluster.admission.AdmissionController` is attached,
  every arrival is admitted or *shed* before routing; shed jobs emit
  ``job_shed`` events and never touch a queue.
* **backpressure** — when the controller reports
  :meth:`~repro.cluster.admission.AdmissionController.overloaded`, the
  pump pauses; job completions that bring outstanding cost back under
  the low-water mark resume it.  Pause time becomes *lag*: subsequent
  arrivals (and their deadlines) shift forward by the accumulated
  delay, modelling a source that retries later rather than vanishing.
* **tenancy accounting** — per-tenant offered/shed/completed counters
  and a ``job_id → tenant`` map that
  :func:`~repro.traffic.metrics.traffic_summary` joins against the
  run's records.

Everything else — routing, node churn, retries, autoscaling, the event
log — is inherited unchanged from the closed-loop engine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

from repro.cluster.admission import AdmissionController, AdmissionPolicy
from repro.cluster.engine import (
    PRIO_ARRIVAL,
    PRIO_CHURN,
    PRIO_TICK,
    ClusterEngine,
)
from repro.cluster.nodes import JobRecord, ProverNode
from repro.service.jobs import ProofJob
from repro.sim import TraceSource, install
from repro.traffic.openloop import OpenLoopTraffic
from repro.workloads.churn import ChurnEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.core import ProvingCluster

#: sentinel total while the source is still producing: never "done"
_UNBOUNDED = 1 << 62


def make_admission(
    cluster: "ProvingCluster",
    policy: AdmissionPolicy,
    tenants,
) -> AdmissionController:
    """An admission controller wired to ``cluster``'s time model.

    Jobs are priced at their *cold* cost — index install plus prove
    from the fleet time model — because admission cannot know whether
    the target node's cache will hit; under shape churn installs
    dominate node time, so a prove-only price would admit far past
    capacity.  The budget tracks the router's up-node count, so
    admission and autoscaling reason about the same fleet size.
    """
    router = cluster.router
    time_model = cluster.time_model

    def cold_cost_s(job: ProofJob) -> float:
        return time_model.install_s(job) + time_model.prove_s(job)

    return AdmissionController(
        policy,
        list(tenants),
        cost_of=cold_cost_s,
        up_nodes=lambda: len(router.up_node_ids),
    )


class OpenLoopEngine(ClusterEngine):
    """One open-loop run over a cluster; see the module docstring."""

    def __init__(
        self,
        cluster: "ProvingCluster",
        traffic: OpenLoopTraffic,
        *,
        admission: AdmissionController | None = None,
    ):
        super().__init__(cluster, respect_arrivals=True)
        self.traffic = traffic
        self.admission = admission
        self._job_iter: Iterator[ProofJob] | None = None
        self._next_job: ProofJob | None = None
        self._source_done = False
        self._paused = False
        self._draining = False
        #: cumulative arrival shift from backpressure pauses, seconds
        self.lag_s = 0.0
        self.offered = 0
        self.admitted = 0
        self.pauses = 0
        #: job_id → tenant name, for every offered (not just admitted) job
        self.tenant_of: dict[int, str] = {}
        self.offered_by_tenant: dict[str, int] = {}

    # -- the arrival pump ----------------------------------------------------
    def _pump(self) -> None:
        """Schedule the next arrival (or declare the source done)."""
        if self._next_job is None:
            self._next_job = next(self._job_iter, None)
            if self._next_job is None:
                self._source_done = True
                self._total_jobs = self.admitted
                self._check_done()
                return
        fire = self._next_job.arrival_s + self.lag_s
        if fire < self.sim.now:
            fire = self.sim.now
        self.sim.schedule_fast(fire, self._arrive, priority=PRIO_ARRIVAL)

    def _arrive(self) -> None:
        """One arrival: lag-shift, admit or shed, route, pump the next."""
        job = self._next_job
        self._next_job = None
        shift = self.sim.now - job.arrival_s
        if shift > 0:
            # backpressure pushed this arrival past its source time;
            # carry the lag so the stream stays causally ordered and
            # deadlines keep their slack relative to actual arrival
            self.lag_s = shift
            if job.deadline_s is not None:
                job.deadline_s += shift
            job.arrival_s = self.sim.now
        self.offered += 1
        self.cluster.check_fits(job)
        job.job_id = self.cluster.next_job_id()
        if job.tenant is not None:
            self.tenant_of[job.job_id] = job.tenant
            self.offered_by_tenant[job.tenant] = (
                self.offered_by_tenant.get(job.tenant, 0) + 1
            )
        if self.admission is not None and not self.admission.admit(job):
            self.events.emit(
                "job_shed",
                job_id=job.job_id,
                attempt=job.attempt,
                tenant=job.tenant,
            )
        else:
            self.admitted += 1
            self.events.emit("job_accepted", job_id=job.job_id, tag=job.tag)
            self._route(job)
        if self.admission is not None and self.admission.overloaded():
            self._paused = True
            self.pauses += 1
            return
        self._pump()

    # -- resolution hooks ----------------------------------------------------
    def _finish(self, node: ProverNode) -> None:
        job = node.in_flight.job
        super()._finish(node)
        self._settle(job)

    def _fail(self, job: ProofJob) -> None:
        super()._fail(job)
        self._settle(job)

    def _settle(self, job: ProofJob) -> None:
        """Release admission debt; resume a paused pump when relieved."""
        if self.admission is None:
            return
        self.admission.settle(job)
        if self._paused and not self._draining and self.admission.relieved():
            self._paused = False
            self._pump()

    # -- entry point ---------------------------------------------------------
    def run_open_loop(
        self, *, churn: Iterable[ChurnEvent] = ()
    ) -> list[JobRecord]:
        """Pump the whole stream through the cluster; returns the records."""
        self._scenario = True
        self.respect = True
        self._total_jobs = _UNBOUNDED
        self._job_iter = self.traffic.jobs()
        churn_events = [(event.at_s, event) for event in churn]
        if churn_events:
            self._cancellable.extend(
                install(
                    self.sim,
                    TraceSource(churn_events),
                    self._on_churn,
                    priority=PRIO_CHURN,
                )
            )
        if self.cluster.config.autoscale is not None:
            self._tick_handle = self.sim.schedule(
                self.cluster.config.autoscale.interval_s,
                self._tick,
                priority=PRIO_TICK,
            )
        self._pump()
        self.sim.run()
        if not self._source_done:
            # the heap drained with the pump paused and nothing left to
            # settle it (every unresolved job is parked with the fleet
            # down for good): account the stream as truncated here
            self._source_done = True
            self._total_jobs = self.admitted
        self._draining = True
        return self._finalize()
