"""Open-loop traffic measurement: goodput, shedding, tail, fairness.

Closed-batch summaries (:func:`repro.cluster.metrics.cluster_summary`)
ask "how fast did the fleet drain N jobs"; an open-loop run under
admission control needs different headlines:

* **goodput** — completions that met their SLO per model second; the
  number admission control exists to protect (raw throughput can look
  great while every deadline burns);
* **shed rate** — offered jobs rejected at admission, overall and per
  tenant (who pays for overload);
* **tail latency** — p50/p95/p99/p99.9 via the sort-once
  :func:`~repro.service.metrics.percentiles` (at 10⁵ samples the p99.9
  is finally a statistic, not noise);
* **Jain fairness** — :func:`jain_fairness` over weight-normalized
  per-tenant SLO-met completions: 1.0 means every tenant got goodput
  proportional to its traffic share, 1/n means one tenant took it all.
"""

from __future__ import annotations

from repro.service.metrics import percentiles
from repro.traffic.engine import OpenLoopEngine


def jain_fairness(values: list[float]) -> float:
    """Jain's fairness index: ``(Σx)² / (n · Σx²)``, in ``(0, 1]``.

    Defined as 1.0 for empty or all-zero allocations (nothing was
    unfairly divided).
    """
    xs = list(values)
    square_sum = sum(x * x for x in xs)
    if not xs or square_sum == 0.0:
        return 1.0
    total = sum(xs)
    return (total * total) / (len(xs) * square_sum)


def traffic_summary(engine: OpenLoopEngine) -> dict:
    """One summary dict over a finished open-loop run."""
    records = engine.records
    traffic = engine.traffic
    makespan = max((r.finish_s for r in records), default=0.0)
    latencies = [r.latency_s for r in records]
    p50, p95, p99, p99_9 = percentiles(latencies, (50, 95, 99, 99.9))
    slo_met = sum(1 for r in records if not r.missed_deadline)

    tenants = {t.name: t for t in traffic.tenants}
    completed_by_tenant = {name: 0 for name in tenants}
    slo_met_by_tenant = {name: 0 for name in tenants}
    tenant_of = engine.tenant_of
    for record in records:
        name = tenant_of.get(record.job_id)
        if name is None:
            continue
        completed_by_tenant[name] += 1
        if not record.missed_deadline:
            slo_met_by_tenant[name] += 1

    shed_by_tenant = (
        engine.admission.shed_by_tenant
        if engine.admission is not None
        else {name: 0 for name in tenants}
    )
    shed = engine.offered - engine.admitted
    # fairness over SLO-met completions normalized by traffic weight:
    # a tenant that offered twice the traffic deserves twice the goodput
    normalized = [
        slo_met_by_tenant[name] / tenant.weight
        for name, tenant in sorted(tenants.items())
    ]
    doc = {
        "offered": engine.offered,
        "admitted": engine.admitted,
        "shed": shed,
        "shed_rate": round(shed / engine.offered, 4) if engine.offered else 0.0,
        "completed": len(records),
        "failed": len(engine.failed_jobs),
        "pauses": engine.pauses,
        "lag_s": round(engine.lag_s, 6),
        "model": {
            "makespan_s": round(makespan, 6),
            "throughput_jobs_per_s": (
                round(len(records) / makespan, 3) if makespan > 0 else 0.0
            ),
            "goodput_jobs_per_s": (
                round(slo_met / makespan, 3) if makespan > 0 else 0.0
            ),
            "slo_met": slo_met,
            "slo_attainment": (
                round(slo_met / len(records), 4) if records else 0.0
            ),
            "latency_s": {
                "p50": round(p50, 6),
                "p95": round(p95, 6),
                "p99": round(p99, 6),
                "p99_9": round(p99_9, 6),
            },
        },
        "jain_fairness": round(jain_fairness(normalized), 4),
        "tenants": [
            {
                "tenant": name,
                "tier": tenant.tier.name,
                "weight": round(tenant.weight, 4),
                "offered": engine.offered_by_tenant.get(name, 0),
                "shed": shed_by_tenant.get(name, 0),
                "completed": completed_by_tenant[name],
                "slo_met": slo_met_by_tenant[name],
            }
            for name, tenant in sorted(tenants.items())
        ],
    }
    if engine.admission is not None:
        doc["admission"] = engine.admission.as_dict()
    if engine.carbon is not None:
        doc["carbon"] = engine.carbon.as_dict(
            records, engine.cluster._all_nodes()
        )
    return doc
