"""Design-space exploration (§VI-A1 objective, §VI-B1 Pareto frontiers).

Two DSE entry points:

* :func:`sumcheck_dse` — the standalone SumCheck-unit search of Fig 6:
  pick, per bandwidth tier and area budget, the configuration minimizing
  (1-λ)·geomean-slowdown + λ·(1-mean-utilization) over a polynomial
  training set (λ = 0.8 in the paper).
* :func:`accelerator_dse` — the full-system sweep of Table III for
  Fig 10/Table IV.  The sweep is factored: SumCheck-side and MSM-side
  configurations are pruned to their own latency/area Pareto sets first,
  then crossed — this preserves the global Pareto frontier because the
  two groups contribute additively (and the masking max() only ever
  shrinks with faster components).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from math import exp, log
from typing import Iterable, Sequence

from repro.hw import area as area_model
from repro.hw.accelerator import ZkPhireModel
from repro.hw.config import (
    AcceleratorConfig,
    MSMUnitConfig,
    SumCheckUnitConfig,
)
from repro.hw.scheduler import PolyProfile
from repro.hw.sumcheck_unit import SumCheckUnitModel
from repro.plan import hyperplonk_plan

# Table III knob values
SC_PES = (1, 2, 4, 8, 16, 32)
SC_EES = (2, 3, 4, 5, 6, 7)
SC_PLS = (3, 4, 5, 6, 7, 8)
SC_SRAM = (1024, 2048, 4096, 8192, 16384, 32768)
MSM_PES = (1, 2, 4, 8, 16, 32)
MSM_WINDOWS = (7, 8, 9, 10)
MSM_POINTS = (1024, 2048, 4096, 8192, 16384)
BANDWIDTHS = (64, 128, 256, 512, 1024, 2048, 4096)


def geomean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("geomean of empty sequence")
    return exp(sum(log(max(v, 1e-300)) for v in values) / len(values))


@dataclass
class DesignPoint:
    """One evaluated design: a config plus its metrics."""

    config: AcceleratorConfig
    runtime_s: float
    area_mm2: float
    extras: dict = field(default_factory=dict)


def pareto_frontier(points: Iterable[DesignPoint]) -> list[DesignPoint]:
    """Minimize (runtime, area): keep points no other point dominates."""
    pts = sorted(points, key=lambda p: (p.runtime_s, p.area_mm2))
    frontier: list[DesignPoint] = []
    best_area = float("inf")
    for p in pts:
        if p.area_mm2 < best_area - 1e-12:
            frontier.append(p)
            best_area = p.area_mm2
    return frontier


# -- Fig 6: standalone SumCheck DSE -------------------------------------------

@dataclass
class SumCheckDesign:
    config: SumCheckUnitConfig
    bandwidth_gbps: float
    area_mm2: float
    latencies: dict[str, float]
    utilizations: dict[str, float]
    objective: float = 0.0

    @property
    def mean_utilization(self) -> float:
        u = list(self.utilizations.values())
        return sum(u) / len(u)


def enumerate_sumcheck_configs(
    area_budget_mm2: float,
    pes=SC_PES, ees=SC_EES, pls=SC_PLS, sram=SC_SRAM,
    fixed_prime: bool = True,
) -> list[SumCheckUnitConfig]:
    """All Table III SumCheck configs under the area budget."""
    out = []
    for p, e, l, s in product(pes, ees, pls, sram):
        cfg = SumCheckUnitConfig(pes=p, ees_per_pe=e, pls_per_pe=l,
                                 sram_bank_words=s, fixed_prime=fixed_prime)
        if area_model.standalone_sumcheck_area(cfg, 0.0) <= area_budget_mm2:
            out.append(cfg)
    return out


def sumcheck_dse(
    polys: Sequence[tuple[str, PolyProfile, int]],
    area_budget_mm2: float,
    bandwidth_gbps: float,
    lam: float = 0.8,
    configs: Sequence[SumCheckUnitConfig] | None = None,
    freq_ghz: float = 1.0,
) -> SumCheckDesign:
    """Pick the best standalone SumCheck design at one bandwidth tier.

    ``polys``: (name, profile, num_vars) training set.
    Objective: (1-λ)·geomean slowdown-vs-per-poly-best + λ·(1-mean util).
    """
    configs = list(configs) if configs is not None else \
        enumerate_sumcheck_configs(area_budget_mm2)
    if not configs:
        raise ValueError("no configuration fits the area budget")

    evaluated: list[SumCheckDesign] = []
    for cfg in configs:
        model = SumCheckUnitModel(cfg, bandwidth_gbps, freq_ghz)
        lat, util = {}, {}
        for name, poly, num_vars in polys:
            run = model.run(poly, num_vars)
            lat[name] = run.latency_s
            util[name] = run.utilization
        evaluated.append(SumCheckDesign(
            config=cfg, bandwidth_gbps=bandwidth_gbps,
            area_mm2=area_model.standalone_sumcheck_area(cfg, bandwidth_gbps),
            latencies=lat, utilizations=util,
        ))

    best_per_poly = {
        name: min(d.latencies[name] for d in evaluated)
        for name, _, _ in polys
    }
    best: SumCheckDesign | None = None
    for d in evaluated:
        slowdowns = [d.latencies[n] / best_per_poly[n] for n in best_per_poly]
        d.objective = ((1.0 - lam) * geomean(slowdowns)
                       + lam * (1.0 - d.mean_utilization))
        if best is None or d.objective < best.objective:
            best = d
    assert best is not None
    return best


# -- Fig 10 / Table IV: full-accelerator DSE -------------------------------------

def _module_pareto(points: list[tuple[float, float, object]]) -> list[tuple[float, float, object]]:
    """Pareto-minimal (latency, area, payload) triples."""
    pts = sorted(points, key=lambda t: (t[0], t[1]))
    out: list[tuple[float, float, object]] = []
    best_area = float("inf")
    for lat, a, payload in pts:
        if a < best_area - 1e-12:
            out.append((lat, a, payload))
            best_area = a
    return out


def accelerator_dse(
    gate_type_name: str,
    num_vars: int,
    bandwidth_gbps: float,
    sc_grid: Iterable[SumCheckUnitConfig] | None = None,
    msm_grid: Iterable[MSMUnitConfig] | None = None,
    mask_zerocheck: bool = True,
) -> list[DesignPoint]:
    """Evaluate the Table III grid at one bandwidth; returns all points
    after factored pruning (see module docstring)."""
    if sc_grid is None:
        sc_grid = [
            SumCheckUnitConfig(pes=p, ees_per_pe=e, pls_per_pe=l,
                               sram_bank_words=s)
            for p, e, l, s in product(SC_PES, SC_EES, SC_PLS, SC_SRAM)
        ]
    if msm_grid is None:
        msm_grid = [
            MSMUnitConfig(pes=p, window_bits=w, points_per_pe=pp)
            for p, w, pp in product(MSM_PES, MSM_WINDOWS, MSM_POINTS)
        ]

    # the shared plan fixes the phase inventory once for the whole sweep;
    # every design point prices the same plan
    plan = hyperplonk_plan(gate_type_name, num_vars)

    # -- prune the SumCheck side: latency proxy = sum of its 3 SumChecks ---
    sc_points = []
    for cfg in sc_grid:
        acc = AcceleratorConfig(sumcheck=cfg, bandwidth_gbps=bandwidth_gbps,
                                mask_zerocheck=mask_zerocheck)
        model = ZkPhireModel(acc)
        bd = model.price(plan)
        sc_lat = bd.zerocheck + bd.permcheck + bd.opencheck
        sc_area = (area_model.sumcheck_area(cfg)
                   + area_model.forest_area(acc.forest))
        sc_points.append((sc_lat, sc_area, cfg))
    sc_pruned = _module_pareto(sc_points)

    # -- prune the MSM side -------------------------------------------------
    msm_points = []
    # the plan's MSM inventory: k sparse witness columns, plus the wiring
    # and opening phases (each one N-point and one 2N-point dense MSM)
    gate_type_k = len(plan.phase("witness_msm").msms)
    n = 1 << num_vars
    from repro.hw.msm_unit import MSMUnitModel

    for cfg in msm_grid:
        m = MSMUnitModel(cfg, bandwidth_gbps)
        lat = (gate_type_k * m.latency_s(n, sparse=True)
               + 2 * (m.latency_s(n) + m.latency_s(2 * n)))
        msm_points.append((lat, area_model.msm_area(cfg), cfg))
    msm_pruned = _module_pareto(msm_points)

    # -- cross the survivors --------------------------------------------------
    out: list[DesignPoint] = []
    for _, _, sc_cfg in sc_pruned:
        for _, _, msm_cfg in msm_pruned:
            acc = AcceleratorConfig(sumcheck=sc_cfg, msm=msm_cfg,
                                    bandwidth_gbps=bandwidth_gbps,
                                    mask_zerocheck=mask_zerocheck)
            model = ZkPhireModel(acc)
            runtime = model.price(plan).total
            breakdown = area_model.accelerator_area(acc)
            out.append(DesignPoint(config=acc, runtime_s=runtime,
                                   area_mm2=breakdown.total))
    return out


def global_pareto(
    gate_type_name: str,
    num_vars: int,
    bandwidths: Sequence[float] = BANDWIDTHS,
    **kwargs,
) -> tuple[dict[float, list[DesignPoint]], list[DesignPoint]]:
    """Per-bandwidth Pareto curves plus the global frontier (Fig 10)."""
    per_bw: dict[float, list[DesignPoint]] = {}
    everything: list[DesignPoint] = []
    for bw in bandwidths:
        points = accelerator_dse(gate_type_name, num_vars, bw, **kwargs)
        per_bw[bw] = pareto_frontier(points)
        everything.extend(per_bw[bw])
    return per_bw, pareto_frontier(everything)
