"""Technology constants.

Every number here is published in the paper (§V, Table V, Table IX) or a
cited source; nothing is re-synthesized.  Areas are reported in the
paper's TSMC 22nm and scaled to 7nm by the paper's factors (3.6× area,
3.3× power — [11]-[13], [65], [66]).
"""

from __future__ import annotations

# -- scaling ----------------------------------------------------------------
AREA_SCALE_22_TO_7 = 3.6
POWER_SCALE_22_TO_7 = 3.3

CLOCK_GHZ = 1.0  # zkPHIRE's clock (§V)


def to_7nm_area(mm2_22nm: float) -> float:
    return mm2_22nm / AREA_SCALE_22_TO_7


# -- modular arithmetic units (22nm, §V) --------------------------------------
MODMUL_255_ARBITRARY_MM2_22 = 0.478
MODMUL_255_FIXED_MM2_22 = 0.264
MODMUL_381_ARBITRARY_MM2_22 = 1.13
MODMUL_381_FIXED_MM2_22 = 0.582
MODINV_MM2_22 = 0.027  # zkSpeed's inverse unit; modmul is 17.7x larger

# 7nm equivalents (match Table IX's "Modmul (mm2)" row: 0.073/0.162 fixed,
# 0.133/0.314 arbitrary)
MODMUL_255_ARBITRARY_MM2 = to_7nm_area(MODMUL_255_ARBITRARY_MM2_22)
MODMUL_255_FIXED_MM2 = to_7nm_area(MODMUL_255_FIXED_MM2_22)
MODMUL_381_ARBITRARY_MM2 = to_7nm_area(MODMUL_381_ARBITRARY_MM2_22)
MODMUL_381_FIXED_MM2 = to_7nm_area(MODMUL_381_FIXED_MM2_22)
MODINV_MM2 = to_7nm_area(MODINV_MM2_22)


def modmul_area(bits: int, fixed_prime: bool) -> float:
    """7nm area of one fully-pipelined Montgomery multiplier."""
    if bits == 255:
        return MODMUL_255_FIXED_MM2 if fixed_prime else MODMUL_255_ARBITRARY_MM2
    if bits == 381:
        return MODMUL_381_FIXED_MM2 if fixed_prime else MODMUL_381_ARBITRARY_MM2
    raise ValueError(f"no multiplier characterized for {bits} bits")


# -- data sizes ----------------------------------------------------------------
FR_BYTES = 32          # 255-bit MLE element, padded
G1_AFFINE_BYTES = 96   # 2 x 381-bit coordinates
G1_JACOBIAN_BYTES = 144

# -- memory system (§VI-B1, [2]) ----------------------------------------------
HBM2_PHY_MM2 = 14.9     # per PHY, 7nm-equivalent (paper's assumption)
HBM3_PHY_MM2 = 29.6
HBM2_PHY_GBPS = 512.0   # one HBM2e PHY worth of bandwidth
HBM3_PHY_GBPS = 1024.0
HBM_PHY_WATTS = 31.8    # Table V: 63.60 W for 2 HBM3 PHYs

# SRAM density: Table V has 27.55 mm2 for ~67 MB of on-chip SRAM (7nm)
SRAM_MM2_PER_MB = 27.55 / 67.0

# -- per-module power densities (W / mm2, derived from Table V) -----------------
POWER_DENSITY = {
    "msm": 58.99 / 105.69,
    "forest": 40.69 / 48.18,
    "sumcheck": 14.43 / 16.65,
    "other": 6.17 / 10.64,
    "sram": 3.56 / 27.55,
    "interconnect": 14.83 / 26.42,
}

# -- structural constants ---------------------------------------------------------
PADD_MODMULS = 16           # fully-pipelined mixed Jacobian add (11M + 5S)
SC_SCRATCHPAD_BUFFERS = 16  # per SumCheck PE (§III-B)
SC_ACC_REGISTERS = 32       # accumulation registers (degree <= 31 natively)
EE_ADDER_MM2 = 0.020        # extension-engine adder chain + mux, 7nm
SC_PE_CONTROL_MM2 = 0.35    # pack/crossbar/FSM slice per SumCheck PE
MSM_PE_CONTROL_MM2 = 0.70   # bucket control + scheduler slice per MSM PE
FOREST_OVERHEAD_FRAC = 0.03
INTERCONNECT_FRAC = 0.146   # Table V: 26.42 / 181.15 of compute area

# batch-inversion design point (§IV-B5)
PERMQUOT_INVERSE_UNITS = 266
PERMQUOT_BATCH = 2
PERMQUOT_DEFAULT_PES = 5    # one per Jellyfish witness column

# SHA3 + misc fixed blocks (OpenCores IP + padding logic, 7nm)
SHA3_MM2 = 0.55
MLE_COMBINE_MULS = 6

# -- baseline platforms (§V) -----------------------------------------------------
CPU_DIE_MM2 = 296.0        # AMD EPYC 7502, 32 cores
CPU_4THREAD_MM2 = 37.0     # 4-core area slice used as Fig-6 area budget
CPU_THREADS_FULL = 32
GPU_BW_GBPS = 1600.0       # A100 40GB
