"""The Multifunction Forest model (§IV-B2, [41]).

A forest of binary-tree units; each tree has M fully-pipelined 255-bit
multipliers and consumes 2M leaf operands per cycle at the base level,
with upper levels overlapped in the pipeline.  The same multipliers are
time-shared between (a) SumCheck product lanes and (b) tree kernels:

* **product MLE** (π̃) construction — N-1 multiplies over 2N leaves,
* **MLE evaluation** — folding a 2^μ table by a point, ~N multiplies,
* **Build MLE** — materializing eq(x, r), ~2N multiplies (only used by
  the zkSpeed comparator; zkPHIRE fuses this into SumCheck round 1).

Throughput model: a kernel needing W multiplies on a forest with C total
multipliers takes ceil(W / C) + depth cycles, bounded by memory traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2

from repro.hw import memory, tech
from repro.hw.config import ForestConfig

FOREST_FILL_CYCLES = 128


@dataclass
class ForestRun:
    kernel: str
    multiplies: float
    cycles: float
    bytes_moved: float
    latency_s: float


class ForestModel:
    def __init__(self, config: ForestConfig, bandwidth_gbps: float,
                 freq_ghz: float = 1.0):
        self.config = config
        self.bandwidth_gbps = bandwidth_gbps
        self.freq_hz = freq_ghz * 1e9

    def _run(self, kernel: str, multiplies: float, bytes_moved: float,
             depth_hint: float = 0.0) -> ForestRun:
        capacity = self.config.total_multipliers
        cycles = ceil(multiplies / capacity) + depth_hint + FOREST_FILL_CYCLES
        mem_s = memory.transfer_seconds(bytes_moved, self.bandwidth_gbps)
        latency = max(cycles / self.freq_hz, mem_s)
        return ForestRun(kernel=kernel, multiplies=multiplies, cycles=cycles,
                         bytes_moved=bytes_moved, latency_s=latency)

    def product_tree(self, num_leaves: int) -> ForestRun:
        """Build π̃ from 2^μ fraction leaves: N-1 muls, read N, write 2N."""
        muls = num_leaves - 1
        traffic = 3.0 * num_leaves * tech.FR_BYTES
        return self._run("product_tree", muls, traffic, depth_hint=log2(max(num_leaves, 2)))

    def mle_eval(self, table_entries: int) -> ForestRun:
        """Evaluate a committed MLE at a point: fold, ~N muls, read N."""
        muls = table_entries - 1
        traffic = float(table_entries * tech.FR_BYTES)
        return self._run("mle_eval", muls, traffic, depth_hint=log2(max(table_entries, 2)))

    def batch_eval(self, num_polys: int, table_entries: int) -> ForestRun:
        """The Batch Evaluations protocol step: fold every committed MLE."""
        muls = num_polys * (table_entries - 1)
        traffic = float(num_polys * table_entries * tech.FR_BYTES)
        return self._run("batch_eval", muls, traffic,
                         depth_hint=log2(max(table_entries, 2)))

    def build_mle(self, table_entries: int) -> ForestRun:
        """Materialize eq(x, r): ~2N muls, write N (zkSpeed's extra pass)."""
        muls = 2.0 * table_entries
        traffic = float(table_entries * tech.FR_BYTES)
        return self._run("build_mle", muls, traffic,
                         depth_hint=log2(max(table_entries, 2)))
