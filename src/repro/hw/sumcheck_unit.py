"""Latency/utilization model of the programmable SumCheck unit (§III).

Per SumCheck round the model composes:

* **compute** — pairs per PE × cycles-per-pair from the Figure-2
  schedule (steps × lane initiation interval), plus pipeline fill;
* **traffic** — round-1 reads use sparsity-aware encodings; the
  randomizer fr is *built in-datapath* during round 1 (one product lane
  is reserved for it — §III-F), so it is never read in round 1; updated
  (halved) tables are written back dense, until the working set fits in
  the banked scratchpads, after which off-chip traffic stops (§III-B);
* **round latency** — max(compute, traffic/BW) + a fill/drain constant.

Utilization is useful modmul work divided by modmul-capacity × compute
cycles, the quantity Figure 6 plots (~0.4-0.5: update units idle in round
1, low-degree polynomials under-fill lanes, repeated MLEs skip updates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil

from repro.hw import memory
from repro.hw.config import SumCheckUnitConfig
from repro.hw.scheduler import PolyProfile, PolynomialSchedule, schedule_polynomial

#: pipeline fill/drain cycles charged per schedule step per round
STEP_FILL_CYCLES = 64
#: fixed per-round control/FSM overhead cycles
ROUND_OVERHEAD_CYCLES = 200


@dataclass
class RoundStat:
    round_index: int          # 1-based
    pairs: int                # table pairs processed (total)
    compute_cycles: float
    bytes_read: float
    bytes_written: float
    latency_s: float
    on_chip: bool


@dataclass
class SumCheckRun:
    poly_name: str
    num_vars: int
    rounds: list[RoundStat] = field(default_factory=list)
    useful_muls: float = 0.0
    capacity_mul_cycles: float = 0.0

    @property
    def latency_s(self) -> float:
        return sum(r.latency_s for r in self.rounds)

    @property
    def total_bytes(self) -> float:
        return sum(r.bytes_read + r.bytes_written for r in self.rounds)

    @property
    def compute_cycles(self) -> float:
        return sum(r.compute_cycles for r in self.rounds)

    @property
    def utilization(self) -> float:
        if self.capacity_mul_cycles <= 0:
            return 0.0
        return min(1.0, self.useful_muls / self.capacity_mul_cycles)


class SumCheckUnitModel:
    """Analytical model of one programmable SumCheck unit."""

    def __init__(self, config: SumCheckUnitConfig, bandwidth_gbps: float,
                 freq_ghz: float = 1.0):
        self.config = config
        self.bandwidth_gbps = bandwidth_gbps
        self.freq_hz = freq_ghz * 1e9

    # -- structural helpers -------------------------------------------------
    def schedule(self, poly: PolyProfile) -> PolynomialSchedule:
        return schedule_polynomial(poly, self.config.ees_per_pe,
                                   self.config.pls_per_pe)

    def fits_on_chip(self, entries_per_mle: int, num_mles: int) -> bool:
        cfg = self.config
        if num_mles > 16:  # 16 scratchpad buffers per PE (§III-B)
            return False
        return entries_per_mle <= cfg.sram_bank_words * cfg.pes

    # -- the model ----------------------------------------------------------
    def run(self, poly: PolyProfile, num_vars: int,
            fuse_fr: bool | None = None) -> SumCheckRun:
        """Model a full μ-round SumCheck of ``poly`` on 2^num_vars gates.

        ``fuse_fr``: build the randomizer in-datapath during round 1
        (defaults to "poly contains fr").
        """
        cfg = self.config
        sched = self.schedule(poly)
        if fuse_fr is None:
            fuse_fr = poly.has_fr
        degree = poly.degree
        uniq = poly.unique_mles
        num_uniq = len(uniq)
        # per-term product multiplies per evaluation point
        prod_muls_per_point = sum(t.degree - 1 for t in poly.terms)
        extensions = degree + 1

        run = SumCheckRun(poly_name=poly.name, num_vars=num_vars)
        update_capacity = cfg.pes * cfg.ees_per_pe
        lane_capacity = cfg.pes * cfg.pls_per_pe * (cfg.ees_per_pe - 1)

        # whether the *next* round's input was retained on chip
        prev_written_on_chip = False
        for rnd in range(1, num_vars + 1):
            entries = 1 << (num_vars - rnd + 1)
            pairs = entries // 2
            pairs_per_pe = ceil(pairs / cfg.pes)

            lanes = cfg.pls_per_pe
            if rnd == 1 and fuse_fr and lanes > 1:
                lanes -= 1  # one lane dedicated to Build-MLE fusion
            ii = sched.initiation_interval(lanes)
            steps = sched.num_steps
            compute = (pairs_per_pe * steps * ii
                       + STEP_FILL_CYCLES * steps + ROUND_OVERHEAD_CYCLES)

            # ---- traffic ----------------------------------------------------
            on_chip_now = prev_written_on_chip
            reads = 0.0
            if not on_chip_now:
                if rnd == 1:
                    for name in uniq:
                        if name == "fr" and fuse_fr:
                            continue
                        reads += entries * memory.entry_bytes(
                            poly.mle_classes.get(name, "dense"))
                else:
                    reads = entries * memory.entry_bytes("dense") * num_uniq

            next_entries = pairs  # halved table
            fits_next = self.fits_on_chip(next_entries, num_uniq)
            writes = 0.0
            if rnd < num_vars and not fits_next:
                writes = next_entries * memory.entry_bytes("dense") * num_uniq
            prev_written_on_chip = fits_next and rnd < num_vars

            mem_s = memory.transfer_seconds(reads + writes, self.bandwidth_gbps)
            compute_s = compute / self.freq_hz
            latency = max(compute_s, mem_s) + ROUND_OVERHEAD_CYCLES / self.freq_hz

            run.rounds.append(RoundStat(
                round_index=rnd, pairs=pairs, compute_cycles=compute,
                bytes_read=reads, bytes_written=writes,
                latency_s=latency, on_chip=on_chip_now,
            ))

            # ---- useful work for utilization ----------------------------------
            pl_muls = pairs * extensions * prod_muls_per_point
            upd_muls = 0 if rnd == 1 else 2 * num_uniq * pairs
            fr_muls = 2 * pairs if (rnd == 1 and fuse_fr) else 0
            run.useful_muls += pl_muls + upd_muls + fr_muls
            run.capacity_mul_cycles += (update_capacity + lane_capacity) * compute

        return run

    def latency_s(self, poly: PolyProfile, num_vars: int) -> float:
        return self.run(poly, num_vars).latency_s
