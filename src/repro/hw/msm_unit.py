"""Latency model of the Pippenger MSM unit (§IV-B3, zkSpeed-inherited).

Structure: each PE owns a fully-pipelined 381-bit PADD (one mixed
Jacobian addition per cycle) and a private bucket SRAM holding all
``windows × 2^w`` buckets, so every streamed point is consumed once and
accumulated into all of its windows' buckets.  After accumulation, each
window's buckets are reduced with the running-suffix-sum scan
(2 × 2^w additions per window) and windows are combined with doublings.

Sparsity (§IV-B1): witness scalars are mostly 0 (skipped entirely) or 1
(a single direct accumulation instead of W bucket insertions); only the
"full" fraction pays the dense cost.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.hw import memory, tech
from repro.hw.config import MSMUnitConfig

#: default sparse-scalar composition for witness MSMs (prior-work stats
#: [12], [13], [73]: ~90% of witness scalars are zero or one)
SPARSE_ZERO_FRAC = 0.50
SPARSE_ONE_FRAC = 0.40

#: per-MSM fixed overhead (pipeline fill, scheduling, final window merge)
MSM_FIXED_CYCLES = 4096


@dataclass
class MSMRun:
    num_points: int
    sparse: bool
    cycles: float
    bytes_moved: float
    latency_s: float


class MSMUnitModel:
    def __init__(self, config: MSMUnitConfig, bandwidth_gbps: float,
                 freq_ghz: float = 1.0):
        self.config = config
        self.bandwidth_gbps = bandwidth_gbps
        self.freq_hz = freq_ghz * 1e9

    def run(self, num_points: int, sparse: bool = False) -> MSMRun:
        if num_points < 1:
            raise ValueError("MSM needs at least one point")
        cfg = self.config
        windows = cfg.num_windows
        if sparse:
            full = 1.0 - SPARSE_ZERO_FRAC - SPARSE_ONE_FRAC
            adds_per_point = SPARSE_ONE_FRAC * 1.0 + full * windows
            scalar_bytes = 4.0   # compressed 0/1 stream + offsets
            point_frac = 1.0 - SPARSE_ZERO_FRAC  # zero-scalar points unread
        else:
            adds_per_point = float(windows)
            scalar_bytes = float(tech.FR_BYTES)
            point_frac = 1.0

        bucket_adds = num_points * adds_per_point
        reduction_adds = windows * 2.0 * (1 << cfg.window_bits)
        doubling_adds = 255.0
        cycles = (bucket_adds + reduction_adds) / cfg.pes
        cycles += doubling_adds + MSM_FIXED_CYCLES

        bytes_moved = num_points * (
            point_frac * tech.G1_AFFINE_BYTES + scalar_bytes
        )
        mem_s = memory.transfer_seconds(bytes_moved, self.bandwidth_gbps)
        latency = max(cycles / self.freq_hz, mem_s)
        return MSMRun(num_points=num_points, sparse=sparse, cycles=cycles,
                      bytes_moved=bytes_moved, latency_s=latency)

    def latency_s(self, num_points: int, sparse: bool = False) -> float:
        return self.run(num_points, sparse).latency_s
