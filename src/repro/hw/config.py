"""Hardware configuration dataclasses — the Table III design knobs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw import tech


@dataclass(frozen=True)
class SumCheckUnitConfig:
    """The programmable SumCheck unit (§III)."""

    pes: int = 16
    ees_per_pe: int = 7           # extension engines (Table III: 2-7)
    pls_per_pe: int = 5           # product lanes (Table III: 3-8)
    sram_bank_words: int = 4096   # per-MLE tile capacity (2^10 - 2^15)
    fixed_prime: bool = True

    def __post_init__(self):
        if self.ees_per_pe < 2:
            raise ValueError("need at least 2 extension engines")
        if self.pls_per_pe < 1:
            raise ValueError("need at least 1 product lane")
        if self.pes < 1 or self.sram_bank_words < 2:
            raise ValueError("bad SumCheck configuration")

    @property
    def sram_bytes(self) -> int:
        return (self.pes * tech.SC_SCRATCHPAD_BUFFERS
                * self.sram_bank_words * tech.FR_BYTES)

    @property
    def update_multipliers(self) -> int:
        """MLE-update modmuls: one per EE (update fused into extension)."""
        return self.pes * self.ees_per_pe

    @property
    def product_multipliers(self) -> int:
        """Product-lane modmuls: E-1 per lane (provided by the Forest in
        zkPHIRE; still counted against the lane structure)."""
        return self.pes * self.pls_per_pe * max(self.ees_per_pe - 1, 1)


@dataclass(frozen=True)
class MSMUnitConfig:
    """The Pippenger MSM unit (zkSpeed-inherited, §IV-B3)."""

    pes: int = 32
    window_bits: int = 9          # Table III: 7-10
    points_per_pe: int = 4096     # on-chip point buffer (1K-16K)
    fixed_prime: bool = True

    def __post_init__(self):
        if self.pes < 1 or not (2 <= self.window_bits <= 16):
            raise ValueError("bad MSM configuration")

    @property
    def num_windows(self) -> int:
        return -(-255 // self.window_bits)

    @property
    def bucket_sram_bytes(self) -> int:
        """Jacobian buckets for the live window, per PE (windows are
        processed one at a time over the buffered points)."""
        return self.pes * (1 << self.window_bits) * tech.G1_JACOBIAN_BYTES

    @property
    def point_sram_bytes(self) -> int:
        return self.pes * self.points_per_pe * tech.G1_AFFINE_BYTES


@dataclass(frozen=True)
class ForestConfig:
    """The Multifunction Forest (§IV-B2): tree units whose multipliers are
    shared between SumCheck product lanes and tree-based kernels."""

    trees: int = 80
    muls_per_tree: int = 8
    fixed_prime: bool = True

    def __post_init__(self):
        if self.trees < 1 or self.muls_per_tree < 1:
            raise ValueError("bad Forest configuration")

    @property
    def total_multipliers(self) -> int:
        return self.trees * self.muls_per_tree

    @classmethod
    def sized_for(cls, sumcheck: SumCheckUnitConfig, muls_per_tree: int = 8,
                  slack: float = 1.0 / 3.0, fixed_prime: bool = True) -> "ForestConfig":
        """Size the forest to cover the SumCheck product-lane demand plus
        slack for concurrent tree kernels (the exemplar's 640 muls =
        4/3 x 16 PEs x 5 PLs x 6 muls)."""
        demand = sumcheck.product_multipliers
        total = max(muls_per_tree, int(round(demand * (1.0 + slack))))
        trees = max(1, -(-total // muls_per_tree))
        return cls(trees=trees, muls_per_tree=muls_per_tree,
                   fixed_prime=fixed_prime)


@dataclass(frozen=True)
class PermQuotConfig:
    """The Permutation Quotient Generator (§IV-B5)."""

    pes: int = tech.PERMQUOT_DEFAULT_PES     # "FracMLE PEs" (Table III: 1-4 + 5)
    inverse_units: int = tech.PERMQUOT_INVERSE_UNITS
    batch: int = tech.PERMQUOT_BATCH

    def __post_init__(self):
        if self.pes < 1 or self.inverse_units < 1 or self.batch < 1:
            raise ValueError("bad PermQuot configuration")


@dataclass(frozen=True)
class AcceleratorConfig:
    """A complete zkPHIRE design point."""

    sumcheck: SumCheckUnitConfig = field(default_factory=SumCheckUnitConfig)
    msm: MSMUnitConfig = field(default_factory=MSMUnitConfig)
    forest: ForestConfig | None = None
    permquot: PermQuotConfig = field(default_factory=PermQuotConfig)
    bandwidth_gbps: float = 2048.0
    freq_ghz: float = tech.CLOCK_GHZ
    #: enable the Gate-Identity/Wire-Identity overlap (§IV-A)
    mask_zerocheck: bool = True

    def __post_init__(self):
        if self.forest is None:
            object.__setattr__(
                self, "forest",
                ForestConfig.sized_for(self.sumcheck,
                                       fixed_prime=self.sumcheck.fixed_prime),
            )
        if self.bandwidth_gbps <= 0 or self.freq_ghz <= 0:
            raise ValueError("bad accelerator configuration")

    @classmethod
    def exemplar(cls) -> "AcceleratorConfig":
        """The paper's 294 mm^2 / 2 TB/s design point (Table V): 32 MSM
        PEs, 80 forest trees x 8 muls, 16 SumCheck PEs with 7 EEs + 5 PLs."""
        return cls(
            sumcheck=SumCheckUnitConfig(pes=16, ees_per_pe=7, pls_per_pe=5,
                                        sram_bank_words=1024),
            msm=MSMUnitConfig(pes=32, window_bits=9, points_per_pe=8192),
            forest=ForestConfig(trees=80, muls_per_tree=8),
            bandwidth_gbps=2048.0,
        )
