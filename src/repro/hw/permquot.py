"""The Permutation Quotient Generator model (§IV-B5, Figure 5).

Generates the Numerator, Denominator, and Fraction MLEs for PermCheck.
k witness columns are processed by ``pes`` pipelined PEs producing one
element per cycle each after warmup; per-column intermediates are written
to HBM and merged with modular multiplications; the merged denominator is
inverted with the batch-2 Montgomery scheme — 266 inverse units in
round-robin initiate one inversion every two cycles, each serving two
elements, sustaining one φ element per cycle without backpressure.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from repro.hw import memory, tech
from repro.hw.config import PermQuotConfig

PERMQUOT_WARMUP_CYCLES = 256


@dataclass
class PermQuotRun:
    num_gates: int
    num_columns: int
    cycles: float
    bytes_moved: float
    latency_s: float
    inversions: float


class PermQuotModel:
    def __init__(self, config: PermQuotConfig, bandwidth_gbps: float,
                 freq_ghz: float = 1.0):
        self.config = config
        self.bandwidth_gbps = bandwidth_gbps
        self.freq_hz = freq_ghz * 1e9

    def run(self, num_gates: int, num_columns: int) -> PermQuotRun:
        """Generate N/D/φ for a 2^μ-gate circuit with k witness columns."""
        cfg = self.config
        # column passes: each PE emits one N/D element pair per cycle;
        # with overlapped scheduling and cyclic PE reuse for k > pes
        column_cycles = num_gates * ceil(num_columns / cfg.pes)
        # inversion throughput: one initiation per 2 cycles x batch
        inv_throughput = cfg.inverse_units and (cfg.batch / 2.0)
        inversion_cycles = num_gates / max(inv_throughput, 1e-9)
        # the φ pipeline overlaps generation and inversion; the longer
        # phase dominates, plus warmup
        cycles = max(column_cycles, inversion_cycles) + PERMQUOT_WARMUP_CYCLES

        # traffic: read w_i and σ_i per column; write per-column N/D
        # intermediates, then merged N, D, and φ
        reads = num_gates * tech.FR_BYTES * (2 * num_columns)
        writes = num_gates * tech.FR_BYTES * (2 * num_columns + 3)
        bytes_moved = float(reads + writes)
        mem_s = memory.transfer_seconds(bytes_moved, self.bandwidth_gbps)
        latency = max(cycles / self.freq_hz, mem_s)
        return PermQuotRun(
            num_gates=num_gates, num_columns=num_columns, cycles=cycles,
            bytes_moved=bytes_moved, latency_s=latency,
            inversions=num_gates / cfg.batch,
        )


def inverse_units_required(batch: int = tech.PERMQUOT_BATCH,
                           inversion_latency_cycles: int = 531) -> int:
    """How many inverse units sustain one initiation every ``batch``
    cycles without backpressure.  With zkSpeed's ~531-cycle inversion
    latency and batch-2 initiation, 266 units suffice — the paper's
    number (§IV-B5)."""
    return ceil(inversion_latency_cycles / batch)
