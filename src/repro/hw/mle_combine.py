"""The MLE Combine module model (§IV-B4).

Element-wise operations and dot products between MLE tables and stored
challenges, used before and after the OpenCheck (e.g. forming the random
linear combination the final opening commits to).  Fully pipelined:
one element per cycle per lane, with up to 6 SRAM-buffered operand
streams; in practice the step is bandwidth-bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw import memory, tech

MLE_COMBINE_LANES = 6
#: total multiply-accumulate throughput (elements/cycle): the shared bus
#: feeds the combine datapath at up to 64 elements per cycle, matching
#: the multi-TB/s on-chip bandwidth (§IV-B6)
MLE_COMBINE_ELEMS_PER_CYCLE = 64
MLE_COMBINE_WARMUP = 64


@dataclass
class MLECombineRun:
    elements: int
    streams: int
    cycles: float
    bytes_moved: float
    latency_s: float


class MLECombineModel:
    def __init__(self, bandwidth_gbps: float, freq_ghz: float = 1.0):
        self.bandwidth_gbps = bandwidth_gbps
        self.freq_hz = freq_ghz * 1e9

    def run(self, elements: int, streams: int = 2,
            writes_result: bool = True) -> MLECombineRun:
        """Combine ``streams`` tables of ``elements`` entries element-wise."""
        if streams < 1:
            raise ValueError("need at least one operand stream")
        cycles = (elements * streams / MLE_COMBINE_ELEMS_PER_CYCLE
                  + MLE_COMBINE_WARMUP)
        bytes_moved = elements * tech.FR_BYTES * (
            streams + (1 if writes_result else 0)
        )
        mem_s = memory.transfer_seconds(bytes_moved, self.bandwidth_gbps)
        latency = max(cycles / self.freq_hz, mem_s)
        return MLECombineRun(elements=elements, streams=streams,
                             cycles=cycles, bytes_moved=bytes_moved,
                             latency_s=latency)
