"""zkSpeed / zkSpeed+ comparator models (§VI-A3, Fig 9, Tables VI-IX).

zkSpeed [12] is the fixed-function HyperPlonk accelerator zkPHIRE is
measured against.  Its SumCheck datapath differs from zkPHIRE's in three
ways we model explicitly:

1. **Fixed-function width** — dedicated hardware streams *all* Vanilla
   MLEs concurrently with per-extension-point multipliers, so its lane
   initiation interval is always 1 and its schedule has a single node.
   (It simply cannot run other polynomial shapes — calling it on
   non-Vanilla polynomials raises.)
2. **Separate Build-MLE pass** — fr = eq(x, r) is materialized by the
   tree unit before SumCheck (an O(N) pass with an extra table write +
   round-1 read), where zkPHIRE fuses it into round 1.
3. **zkSpeed (non-plus) updates are not pipelined** into extensions: each
   round pays a separate update pass over the tables.  zkSpeed+ is
   zkSpeed with the fused update (the paper reports it ~10% faster).

zkSpeed also keeps witness MLEs in a large global scratchpad, so its
round-1 reads are free; updated tables still spill off-chip (§IV-B1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw import memory
from repro.hw.scheduler import PolyProfile
from repro.hw.sumcheck_unit import ROUND_OVERHEAD_CYCLES, STEP_FILL_CYCLES

#: zkSpeed's published SumCheck+MLE-update area (22nm -> 7nm happens in
#: the caller; this is the paper's 30.8 mm^2 comparison point)
ZKSPEED_SUMCHECK_MM2 = 30.8
ZKSPEED_BANDWIDTH_GBPS = 2048.0


@dataclass
class ZkSpeedRun:
    poly_name: str
    num_vars: int
    latency_s: float
    build_mle_s: float
    rounds_s: float


class ZkSpeedSumCheckModel:
    """Fixed-function Vanilla SumCheck (zkSpeed / zkSpeed+)."""

    def __init__(self, bandwidth_gbps: float = ZKSPEED_BANDWIDTH_GBPS,
                 freq_ghz: float = 1.0, plus: bool = False,
                 pairs_per_cycle: int = 8):
        self.bandwidth_gbps = bandwidth_gbps
        self.freq_hz = freq_ghz * 1e9
        self.plus = plus
        #: pair throughput per cycle: zkSpeed's fixed-function unit
        #: replicates the whole Vanilla datapath across parallel lanes
        #: (its 30.8 mm² SumCheck area buys ~8 concurrent pair streams)
        self.pairs_per_cycle = pairs_per_cycle

    def run(self, poly: PolyProfile, num_vars: int) -> ZkSpeedRun:
        if poly.degree > 8:
            raise ValueError(
                "zkSpeed's fixed-function datapath supports only the "
                "HyperPlonk Vanilla polynomial family (degree <= 8)"
            )
        uniq = len(poly.unique_mles)
        n = 1 << num_vars

        # Build-MLE pass: 2N tree multiplies + a table write (then read
        # back during round 1).  zkSpeed's MTU has 8-mul trees; its
        # datapath sustains ~16 muls/cycle for this kernel.
        build_cycles = 2 * n / 16.0 + STEP_FILL_CYCLES
        build_bytes = n * memory.entry_bytes("dense")
        build_s = max(build_cycles / self.freq_hz,
                      memory.transfer_seconds(build_bytes, self.bandwidth_gbps))

        rounds_s = 0.0
        for rnd in range(1, num_vars + 1):
            entries = 1 << (num_vars - rnd + 1)
            pairs = entries // 2
            compute = pairs / self.pairs_per_cycle + ROUND_OVERHEAD_CYCLES
            if not self.plus:
                # separate (non-pipelined) update pass; partially
                # overlapped with the next round's streaming, so it costs
                # roughly half a pass (the paper reports zkSpeed+ ~10%
                # faster overall)
                compute += 0.5 * pairs / self.pairs_per_cycle

            # round 1 reads come from the global scratchpad (free);
            # fr is read from off-chip (it was just built)
            if rnd == 1:
                reads = entries * memory.entry_bytes("dense")  # fr only
            else:
                reads = entries * memory.entry_bytes("dense") * uniq
            writes = (pairs * memory.entry_bytes("dense") * uniq
                      if rnd < num_vars else 0.0)
            if not self.plus and rnd > 1:
                # the separate update pass partially re-reads its inputs
                reads *= 1.25
            mem_s = memory.transfer_seconds(reads + writes, self.bandwidth_gbps)
            rounds_s += max(compute / self.freq_hz, mem_s)

        return ZkSpeedRun(poly_name=poly.name, num_vars=num_vars,
                          latency_s=build_s + rounds_s,
                          build_mle_s=build_s, rounds_s=rounds_s)

    def latency_s(self, poly: PolyProfile, num_vars: int) -> float:
        return self.run(poly, num_vars).latency_s


#: Published zkSpeed+ full-protocol runtimes (ms) for Table VI/VIII
#: workloads (Vanilla gates) — the paper's own comparison numbers.
ZKSPEED_PLUS_PROTOCOL_MS = {
    "ZCash": 1.825,
    "Auction": 10.171,
    "Rescue Hash": 19.631,
    "Zexe": 38.535,
    "Rollup 10 Pvt Tx": 76.356,
    "Rollup 25 Pvt Tx": 151.973,
}
