"""Memory-system model: storage classes, bandwidth tiers, PHY selection.

zkPHIRE streams MLE tiles from off-chip memory through small scratchpads
(§IV-B1).  Round-1 traffic benefits from sparsity-aware encodings:

* ``selector`` MLEs are 0/1-valued and stored as a plain bitstream
  (no address translation — "stored as-is"),
* ``sparse`` MLEs (witness / constant columns, ~90% zero-or-binary) use
  per-tile offset buffers: full 255-bit elements are embedded in a
  bitstream of 0/1 entries, with a small offset table locating them,
* ``dense`` MLEs are raw 32-byte elements.

After the first MLE update, tables are dense (challenges mix entries), so
rounds >= 2 always move 32 B/entry.
"""

from __future__ import annotations

from math import ceil

from repro.hw import tech

#: effective bytes per table entry, by storage class (round 1)
BYTES_PER_ENTRY = {
    "selector": 1.0 / 8.0,
    # 10% full elements + 1-bit stream + ~2B offset entry per element
    "sparse": 0.10 * tech.FR_BYTES + 1.0 / 8.0 + 0.10 * 2.0,
    "dense": float(tech.FR_BYTES),
}

#: Table III bandwidth tiers (GB/s)
BANDWIDTH_TIERS = (64, 128, 256, 512, 1024, 2048, 4096)


def entry_bytes(storage_class: str) -> float:
    try:
        return BYTES_PER_ENTRY[storage_class]
    except KeyError:
        raise ValueError(f"unknown MLE storage class {storage_class!r}") from None


def phy_plan(bandwidth_gbps: float) -> tuple[str, int, float]:
    """Pick PHYs for a bandwidth tier: (kind, count, total mm^2).

    HBM3 PHYs (29.6 mm^2, ~1 TB/s each) serve the >= 1 TB/s tiers; HBM2
    PHYs (14.9 mm^2, ~512 GB/s each) serve the DDR/HBM2 tiers, as in the
    paper's Pareto analysis (§VI-B1).
    """
    if bandwidth_gbps <= 0:
        raise ValueError("bandwidth must be positive")
    if bandwidth_gbps >= tech.HBM3_PHY_GBPS:
        count = ceil(bandwidth_gbps / tech.HBM3_PHY_GBPS)
        return "HBM3", count, count * tech.HBM3_PHY_MM2
    count = ceil(bandwidth_gbps / tech.HBM2_PHY_GBPS)
    return "HBM2", count, count * tech.HBM2_PHY_MM2


def transfer_seconds(num_bytes: float, bandwidth_gbps: float) -> float:
    """Time to move ``num_bytes`` at the given off-chip bandwidth."""
    return num_bytes / (bandwidth_gbps * 1e9)


def sram_mm2(num_bytes: float) -> float:
    return (num_bytes / (1 << 20)) * tech.SRAM_MM2_PER_MB
