"""The automated SumCheck scheduler (paper §III-C/E, Figure 2).

Given a composite polynomial and a hardware shape (E extension engines, P
product lanes per PE), the scheduler decomposes each term into *nodes*.
A node consumes at most E factor streams per product-lane input port —
the first node of a term takes up to E factors, every subsequent node
takes E-1 new factors plus the running partial product from the Tmp MLE
buffer (the accumulation schedule on the right of Figure 2, which needs
only one Tmp buffer regardless of degree).

Factor slots count *multiplicity* (w^5 occupies five lane ports) while
fetch/update work counts *distinct* MLEs (a repeated MLE is extended once
and its value reused — the data-reuse §III-A highlights).

The lane schedule maps the K = d+1 extension points onto P lanes with
initiation interval ceil(K / P), queueing the overflow in delay buffers
(§III-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import Sequence

from repro.gates.compiler import CompiledGate
from repro.gates.library import GateSpec

#: reserved name of the ZeroCheck randomizer
FR_NAME = "fr"


@dataclass(frozen=True)
class TermProfile:
    """One product term: (mle name, power) factors."""

    factors: tuple[tuple[str, int], ...]

    @property
    def degree(self) -> int:
        return sum(p for _, p in self.factors)

    @property
    def distinct(self) -> int:
        return len(self.factors)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(n for n, _ in self.factors)


@dataclass
class PolyProfile:
    """The scheduler's view of a composite polynomial.

    ``mle_classes`` maps each constituent MLE to a storage class used by
    the round-1 traffic model: ``selector`` (0/1 bitstream), ``sparse``
    (~90% zero/one witness data, offset-buffer encoded), or ``dense``.
    """

    name: str
    terms: list[TermProfile]
    mle_classes: dict[str, str] = field(default_factory=dict)

    def __post_init__(self):
        for t in self.terms:
            for n, _ in t.factors:
                self.mle_classes.setdefault(n, "dense")

    @property
    def degree(self) -> int:
        return max(t.degree for t in self.terms)

    @property
    def unique_mles(self) -> list[str]:
        seen: dict[str, None] = {}
        for t in self.terms:
            for n, _ in t.factors:
                seen.setdefault(n)
        return list(seen)

    @property
    def has_fr(self) -> bool:
        return FR_NAME in self.unique_mles

    @classmethod
    def from_gate(cls, spec: GateSpec) -> "PolyProfile":
        return cls.from_compiled(spec.compiled, selector_names=spec.selector_names)

    @classmethod
    def from_compiled(cls, compiled: CompiledGate,
                      selector_names: Sequence[str] = ()) -> "PolyProfile":
        terms = [TermProfile(m.factors) for m in compiled.monomials]
        classes: dict[str, str] = {}
        for name in compiled.mle_names:
            if name == FR_NAME:
                classes[name] = "dense"
            elif name in selector_names:
                classes[name] = "selector"
            elif name.startswith(("w", "qc", "qC")):
                classes[name] = "sparse"
            else:
                classes[name] = "dense"
        return cls(name=compiled.name, terms=terms, mle_classes=classes)


@dataclass(frozen=True)
class ScheduleNode:
    """One computation step: which factor slots this node covers."""

    term_index: int
    node_index: int
    factor_slots: int          # lane ports used by new factors (<= E)
    new_names: tuple[str, ...]  # distinct MLEs first needed at this node
    uses_tmp: bool             # consumes the running partial product
    writes_tmp: bool           # leaves a partial product for the next node


@dataclass
class PolynomialSchedule:
    """The full schedule of a polynomial on an (E, P) SumCheck PE."""

    poly: PolyProfile
    ees: int
    pls: int
    nodes: list[ScheduleNode]

    @property
    def num_steps(self) -> int:
        return len(self.nodes)

    @property
    def extensions(self) -> int:
        """K: evaluation points 0..d needed per SumCheck round."""
        return self.poly.degree + 1

    def initiation_interval(self, lanes_available: int | None = None) -> int:
        """Cycles between successive pairs on one node (§III-D)."""
        lanes = self.pls if lanes_available is None else lanes_available
        if lanes < 1:
            raise ValueError("at least one product lane required")
        return ceil(self.extensions / lanes)

    def cycles_per_pair(self, lanes_available: int | None = None) -> int:
        """Pipelined cycles each table pair occupies the PE: every node is
        a pass over the tile, so steps multiply."""
        return self.num_steps * self.initiation_interval(lanes_available)

    def tmp_buffers_required(self) -> int:
        """The accumulation schedule needs at most one Tmp MLE buffer."""
        return 1 if any(n.writes_tmp for n in self.nodes) else 0


def nodes_for_degree(degree: int, ees: int) -> int:
    """Figure-2 node count: first node takes E factor slots, each later
    node E-1 (one port feeds the Tmp partial product)."""
    if degree <= 0:
        return 1
    if degree <= ees:
        return 1
    return 1 + ceil((degree - ees) / (ees - 1))


def schedule_polynomial(poly: PolyProfile, ees: int, pls: int) -> PolynomialSchedule:
    """Decompose every term into nodes and assign prefetch sets.

    Distinct-MLE bookkeeping: an MLE already brought on-chip for an
    earlier term/node in the same round is not re-fetched (``new_names``
    excludes it), matching the banked scratchpad reuse of §III-B.
    """
    if ees < 2:
        raise ValueError("the datapath needs at least 2 extension engines")
    nodes: list[ScheduleNode] = []
    on_chip: set[str] = set()
    for t_idx, term in enumerate(poly.terms):
        # expand factor slots with multiplicity, keeping name order
        slots: list[str] = []
        for name, power in term.factors:
            slots.extend([name] * power)
        first = True
        node_idx = 0
        remaining = slots
        while remaining:
            capacity = ees if first else ees - 1
            chunk, remaining = remaining[:capacity], remaining[capacity:]
            new_names = tuple(
                dict.fromkeys(n for n in chunk if n not in on_chip)
            )
            on_chip.update(chunk)
            nodes.append(ScheduleNode(
                term_index=t_idx,
                node_index=node_idx,
                factor_slots=len(chunk),
                new_names=new_names,
                uses_tmp=not first,
                writes_tmp=bool(remaining) or (not first and bool(remaining)),
            ))
            first = False
            node_idx += 1
        # a multi-node term leaves its product in Tmp until consumed; mark
        # all but the last node as writers
        if node_idx > 1:
            for k in range(len(nodes) - node_idx, len(nodes) - 1):
                nodes[k] = ScheduleNode(
                    term_index=nodes[k].term_index,
                    node_index=nodes[k].node_index,
                    factor_slots=nodes[k].factor_slots,
                    new_names=nodes[k].new_names,
                    uses_tmp=nodes[k].uses_tmp,
                    writes_tmp=True,
                )
    return PolynomialSchedule(poly=poly, ees=ees, pls=pls, nodes=nodes)
