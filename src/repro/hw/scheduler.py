"""The automated SumCheck scheduler (paper §III-C/E, Figure 2).

Given a composite polynomial and a hardware shape (E extension engines, P
product lanes per PE), the scheduler decomposes each term into *nodes*.
A node consumes at most E factor streams per product-lane input port —
the first node of a term takes up to E factors, every subsequent node
takes E-1 new factors plus the running partial product from the Tmp MLE
buffer (the accumulation schedule on the right of Figure 2, which needs
only one Tmp buffer regardless of degree).

Factor slots count *multiplicity* (w^5 occupies five lane ports) while
fetch/update work counts *distinct* MLEs (a repeated MLE is extended once
and its value reused — the data-reuse §III-A highlights).

The lane schedule maps the K = d+1 extension points onto P lanes with
initiation interval ceil(K / P), queueing the overflow in delay buffers
(§III-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

# The profile vocabulary moved to the plan layer (repro.plan.profiles) so
# that describing a proof's work never pulls in a hardware model; these
# re-exports keep the historical import path working.
from repro.plan.profiles import FR_NAME, PolyProfile, TermProfile

__all__ = [
    "FR_NAME",
    "PolyProfile",
    "TermProfile",
    "ScheduleNode",
    "PolynomialSchedule",
    "nodes_for_degree",
    "schedule_polynomial",
]


@dataclass(frozen=True)
class ScheduleNode:
    """One computation step: which factor slots this node covers."""

    term_index: int
    node_index: int
    factor_slots: int          # lane ports used by new factors (<= E)
    new_names: tuple[str, ...]  # distinct MLEs first needed at this node
    uses_tmp: bool             # consumes the running partial product
    writes_tmp: bool           # leaves a partial product for the next node


@dataclass
class PolynomialSchedule:
    """The full schedule of a polynomial on an (E, P) SumCheck PE."""

    poly: PolyProfile
    ees: int
    pls: int
    nodes: list[ScheduleNode]

    @property
    def num_steps(self) -> int:
        return len(self.nodes)

    @property
    def extensions(self) -> int:
        """K: evaluation points 0..d needed per SumCheck round."""
        return self.poly.degree + 1

    def initiation_interval(self, lanes_available: int | None = None) -> int:
        """Cycles between successive pairs on one node (§III-D)."""
        lanes = self.pls if lanes_available is None else lanes_available
        if lanes < 1:
            raise ValueError("at least one product lane required")
        return ceil(self.extensions / lanes)

    def cycles_per_pair(self, lanes_available: int | None = None) -> int:
        """Pipelined cycles each table pair occupies the PE: every node is
        a pass over the tile, so steps multiply."""
        return self.num_steps * self.initiation_interval(lanes_available)

    def tmp_buffers_required(self) -> int:
        """The accumulation schedule needs at most one Tmp MLE buffer."""
        return 1 if any(n.writes_tmp for n in self.nodes) else 0


def nodes_for_degree(degree: int, ees: int) -> int:
    """Figure-2 node count: first node takes E factor slots, each later
    node E-1 (one port feeds the Tmp partial product)."""
    if degree <= 0:
        return 1
    if degree <= ees:
        return 1
    return 1 + ceil((degree - ees) / (ees - 1))


def schedule_polynomial(poly: PolyProfile, ees: int, pls: int) -> PolynomialSchedule:
    """Decompose every term into nodes and assign prefetch sets.

    Distinct-MLE bookkeeping: an MLE already brought on-chip for an
    earlier term/node in the same round is not re-fetched (``new_names``
    excludes it), matching the banked scratchpad reuse of §III-B.
    """
    if ees < 2:
        raise ValueError("the datapath needs at least 2 extension engines")
    nodes: list[ScheduleNode] = []
    on_chip: set[str] = set()
    for t_idx, term in enumerate(poly.terms):
        # expand factor slots with multiplicity, keeping name order
        slots: list[str] = []
        for name, power in term.factors:
            slots.extend([name] * power)
        first = True
        node_idx = 0
        remaining = slots
        while remaining:
            capacity = ees if first else ees - 1
            chunk, remaining = remaining[:capacity], remaining[capacity:]
            new_names = tuple(
                dict.fromkeys(n for n in chunk if n not in on_chip)
            )
            on_chip.update(chunk)
            nodes.append(ScheduleNode(
                term_index=t_idx,
                node_index=node_idx,
                factor_slots=len(chunk),
                new_names=new_names,
                uses_tmp=not first,
                writes_tmp=bool(remaining) or (not first and bool(remaining)),
            ))
            first = False
            node_idx += 1
        # a multi-node term leaves its product in Tmp until consumed; mark
        # all but the last node as writers
        if node_idx > 1:
            for k in range(len(nodes) - node_idx, len(nodes) - 1):
                nodes[k] = ScheduleNode(
                    term_index=nodes[k].term_index,
                    node_index=nodes[k].node_index,
                    factor_slots=nodes[k].factor_slots,
                    new_names=nodes[k].new_names,
                    uses_tmp=nodes[k].uses_tmp,
                    writes_tmp=True,
                )
    return PolynomialSchedule(poly=poly, ees=ees, pls=pls, nodes=nodes)
