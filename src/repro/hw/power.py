"""Power model: per-module W/mm² densities derived from Table V.

Average power = module area × the power density the paper's exemplar
exhibits for that module class, plus a fixed per-PHY HBM power.  This
reproduces Table V's power column by construction at the exemplar and
extrapolates proportionally elsewhere (the paper's own power numbers are
synthesis-tool averages, so density-scaling is the faithful model).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw import memory, tech
from repro.hw.area import AreaBreakdown


@dataclass
class PowerBreakdown:
    msm: float
    forest: float
    sumcheck: float
    other: float
    sram: float
    interconnect: float
    hbm: float

    @property
    def compute(self) -> float:
        return self.msm + self.forest + self.sumcheck + self.other

    @property
    def total(self) -> float:
        return self.compute + self.sram + self.interconnect + self.hbm

    def as_dict(self) -> dict[str, float]:
        return {
            "MSM": self.msm,
            "MultiFunc Forest": self.forest,
            "SumCheck": self.sumcheck,
            "Misc": self.other,
            "Onchip Mem": self.sram,
            "Interconnect": self.interconnect,
            "HBM": self.hbm,
        }


def accelerator_power(area: AreaBreakdown, bandwidth_gbps: float) -> PowerBreakdown:
    d = tech.POWER_DENSITY
    _, phy_count, _ = memory.phy_plan(bandwidth_gbps)
    return PowerBreakdown(
        msm=area.msm * d["msm"],
        forest=area.forest * d["forest"],
        sumcheck=area.sumcheck * d["sumcheck"],
        other=area.other * d["other"],
        sram=area.sram * d["sram"],
        interconnect=area.interconnect * d["interconnect"],
        hbm=phy_count * tech.HBM_PHY_WATTS,
    )
