"""Area model: per-module 7nm rollups (reproduces Table V's area column).

All leaf areas come from the published unit numbers in ``repro.hw.tech``;
module areas are unit counts × unit areas plus small characterized
control overheads, chosen so the paper's exemplar configuration lands on
its published breakdown (MSM 105.69, Forest 48.18, SumCheck 16.65,
Other 10.64, SRAM 27.55, Interconnect 26.42, HBM 59.20 mm²).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw import memory, tech
from repro.hw.config import AcceleratorConfig


@dataclass
class AreaBreakdown:
    msm: float
    forest: float
    sumcheck: float
    other: float
    sram: float
    interconnect: float
    hbm_phy: float

    @property
    def compute(self) -> float:
        return self.msm + self.forest + self.sumcheck + self.other

    @property
    def total(self) -> float:
        return (self.compute + self.sram + self.interconnect + self.hbm_phy)

    def as_dict(self) -> dict[str, float]:
        return {
            "MSM": self.msm,
            "MultiFunc Forest": self.forest,
            "SumCheck": self.sumcheck,
            "Misc": self.other,
            "Onchip Mem": self.sram,
            "Interconnect": self.interconnect,
            "HBM PHY": self.hbm_phy,
        }


def sumcheck_area(config, fixed_prime: bool | None = None) -> float:
    """Update modmuls + extension adder chains + pack/control per PE.
    Product-lane multipliers live in the Forest (§IV-B2) and are counted
    there."""
    fixed = config.fixed_prime if fixed_prime is None else fixed_prime
    mm = tech.modmul_area(255, fixed)
    per_pe = (config.ees_per_pe * (mm + tech.EE_ADDER_MM2)
              + tech.SC_PE_CONTROL_MM2)
    return config.pes * per_pe


def forest_area(config) -> float:
    mm = tech.modmul_area(255, config.fixed_prime)
    return config.total_multipliers * mm * (1.0 + tech.FOREST_OVERHEAD_FRAC)


def msm_area(config) -> float:
    mm = tech.modmul_area(381, config.fixed_prime)
    per_pe = tech.PADD_MODMULS * mm + tech.MSM_PE_CONTROL_MM2
    return config.pes * per_pe


def other_area(config: AcceleratorConfig) -> float:
    """Permutation Quotient Generator + MLE Combine + SHA3 (Table V's
    'Other' row)."""
    mm255 = tech.modmul_area(255, config.sumcheck.fixed_prime)
    permquot = (config.permquot.inverse_units * tech.MODINV_MM2
                + 2 * mm255
                + config.permquot.pes * (2 * mm255 + 0.15))
    mle_combine = tech.MLE_COMBINE_MULS * mm255 + 0.3
    # SHA3 + batch buffer + share-bus controller + padding logic
    fixed = tech.SHA3_MM2 + 5.7
    return permquot + mle_combine + fixed


def sram_area(config: AcceleratorConfig) -> float:
    total_bytes = (
        config.sumcheck.sram_bytes
        + config.msm.bucket_sram_bytes
        + config.msm.point_sram_bytes
        + 3 * 6 * (1 << 20)  # 6 MB each: PermQuot, MLE Combine, Forest (§IV-B6)
    )
    return memory.sram_mm2(total_bytes)


def accelerator_area(config: AcceleratorConfig) -> AreaBreakdown:
    msm = msm_area(config.msm)
    forest = forest_area(config.forest)
    sc = sumcheck_area(config.sumcheck)
    other = other_area(config)
    compute = msm + forest + sc + other
    sram = sram_area(config)
    interconnect = tech.INTERCONNECT_FRAC * compute
    _, _, phy = memory.phy_plan(config.bandwidth_gbps)
    return AreaBreakdown(msm=msm, forest=forest, sumcheck=sc, other=other,
                         sram=sram, interconnect=interconnect, hbm_phy=phy)


def standalone_sumcheck_area(sc_config, bandwidth_gbps: float,
                             include_lane_muls: bool = True) -> float:
    """Area of a standalone SumCheck accelerator (Fig 6/7/8/9 setting):
    the SumCheck unit plus its own product-lane multipliers and local
    SRAM — no MSM/forest/PHY."""
    mm = tech.modmul_area(255, sc_config.fixed_prime)
    area = sumcheck_area(sc_config)
    if include_lane_muls:
        area += sc_config.product_multipliers * mm
    area += memory.sram_mm2(sc_config.sram_bytes)
    return area
