"""Full-protocol zkPHIRE model: pricing a HyperPlonk ProofPlan.

Composes the per-module models into an end-to-end prover latency with
the paper's schedule (§IV-A), including the Masking-ZeroCheck
optimization: Gate Identity's ZeroCheck runs concurrently with the Wire
Identity MSMs (MSMs dominate and have low bandwidth pressure, so the
overlap hides ZeroCheck latency almost entirely).

The *inventory* — which MSMs, SumChecks, and Forest passes one proof
performs, at which sizes — is no longer derived here: it comes from the
shared :class:`repro.plan.ProofPlan` phase DAG (§IV-B3 maps to the
plan's ``witness_msm`` / ``wiring_msm`` / ``opening_msm`` phases).
:meth:`ZkPhireModel.price` prices any plan; :meth:`ZkPhireModel.breakdown`
is the shape-level convenience that builds the canonical plan first.
What stays here is purely the *hardware schedule*: which phases overlap
on the accelerator (:class:`ProtocolBreakdown`'s properties).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gates.library import gate_by_id
from repro.hw.config import AcceleratorConfig
from repro.hw.forest import ForestModel
from repro.hw.mle_combine import MLECombineModel
from repro.hw.msm_unit import MSMUnitModel
from repro.hw.permquot import PermQuotModel
from repro.hw.sumcheck_unit import SumCheckUnitModel
from repro.plan import (
    OPENCHECK_POINTS,
    PolyProfile,
    ProofPlan,
    gate_type_by_name,
    hyperplonk_plan,
    opencheck_profile,
)

__all__ = [
    "OPENCHECK_POINTS",
    "ProtocolBreakdown",
    "ZkPhireModel",
    "gate_type_by_name",
    "opencheck_profile",
    "proof_size_bytes",
]


@dataclass
class ProtocolBreakdown:
    """Per-step latencies (seconds)."""

    witness_msm: float
    zerocheck: float
    permquot: float
    prod_tree: float
    wiring_msm: float
    permcheck: float
    batch_evals: float
    mle_combine: float
    opencheck: float
    opening_msm: float
    masked: bool

    @property
    def wire_msm_phase(self) -> float:
        """PermQuot streams into the MSM unit (Fig 5: one-way transfer),
        so generation and the φ/π̃ commitment MSMs overlap."""
        return max(self.permquot + self.prod_tree, self.wiring_msm)

    @property
    def wire_identity(self) -> float:
        return self.wire_msm_phase + self.permcheck

    @property
    def batch_and_open(self) -> float:
        """The final opening MSMs overlap the OpenCheck SumCheck (the
        quotient streams feed the MSM unit as they are produced)."""
        return (self.batch_evals + self.mle_combine
                + max(self.opencheck, self.opening_msm))

    @property
    def total(self) -> float:
        serial = (self.witness_msm + self.wire_identity + self.batch_and_open)
        if self.masked:
            # ZeroCheck overlaps the Wire-Identity MSM phase (masking,
            # §IV-A): only its excess over that phase is exposed
            exposed_zc = max(0.0, self.zerocheck - self.wire_msm_phase)
            return serial + exposed_zc
        return serial + self.zerocheck

    def as_dict(self) -> dict[str, float]:
        return {
            "Witness MSM": self.witness_msm,
            "ZeroCheck": self.zerocheck,
            "PermQuot": self.permquot,
            "Prod Tree": self.prod_tree,
            "Wiring MSM": self.wiring_msm,
            "PermCheck": self.permcheck,
            "Batch Evals": self.batch_evals,
            "MLE Combine": self.mle_combine,
            "OpenCheck": self.opencheck,
            "PolyOpen MSM": self.opening_msm,
        }

    def phase_groups(self) -> dict[str, float]:
        """The paper's four top-level protocol phases (Fig 12b grouping),
        with the accelerator's overlaps applied."""
        return {
            "Witness MSMs": self.witness_msm,
            "Gate Identity": self.zerocheck,
            "Wire Identity": self.wire_identity,
            "Batch Evals & Poly Open": self.batch_and_open,
        }


class ZkPhireModel:
    """End-to-end prover-latency model for one zkPHIRE design point."""

    def __init__(self, config: AcceleratorConfig):
        self.config = config
        bw, f = config.bandwidth_gbps, config.freq_ghz
        self.sumcheck = SumCheckUnitModel(config.sumcheck, bw, f)
        self.msm = MSMUnitModel(config.msm, bw, f)
        self.forest = ForestModel(config.forest, bw, f)
        self.permquot = PermQuotModel(config.permquot, bw, f)
        self.mle_combine = MLECombineModel(bw, f)

    # -- the model ---------------------------------------------------------------
    def price(self, plan: ProofPlan) -> ProtocolBreakdown:
        """Price every phase of ``plan`` on this design point.

        The plan supplies the inventory (MSM sizes/sparsity, SumCheck
        profiles, Forest pass shapes); this model supplies per-module
        latencies and the overlap schedule.
        """
        mu = plan.num_vars

        def msm_latency(name: str) -> float:
            return sum(self.msm.latency_s(t.points, sparse=t.sparse)
                       for t in plan.phase(name).msms)

        def sumcheck_latency(name: str) -> float:
            phase = plan.phase(name)
            return self.sumcheck.run(phase.poly, mu,
                                     fuse_fr=phase.fuse_fr).latency_s

        pq_phase = plan.phase("permquot")
        return ProtocolBreakdown(
            witness_msm=msm_latency("witness_msm"),
            zerocheck=sumcheck_latency("zerocheck"),
            permquot=self.permquot.run(pq_phase.rows,
                                       pq_phase.columns).latency_s,
            prod_tree=self.forest.product_tree(
                plan.phase("prod_tree").rows).latency_s,
            wiring_msm=msm_latency("wiring_msm"),
            permcheck=sumcheck_latency("permcheck"),
            batch_evals=self.forest.batch_eval(
                plan.phase("batch_evals").streams,
                plan.phase("batch_evals").rows).latency_s,
            mle_combine=self.mle_combine.run(
                plan.phase("mle_combine").rows,
                streams=plan.phase("mle_combine").streams).latency_s,
            opencheck=sumcheck_latency("opencheck"),
            opening_msm=msm_latency("opening_msm"),
            masked=self.config.mask_zerocheck,
        )

    def breakdown(self, gate_type_name: str, num_vars: int,
                  custom_zerocheck: PolyProfile | None = None) -> ProtocolBreakdown:
        """Model a full proof for 2^num_vars gates.

        ``custom_zerocheck`` substitutes the Gate-Identity polynomial
        (used by the high-degree sweep, Fig 14).
        """
        return self.price(hyperplonk_plan(gate_type_name, num_vars,
                                          custom_zerocheck=custom_zerocheck))

    def prove_latency_s(self, gate_type_name: str, num_vars: int,
                        custom_zerocheck: PolyProfile | None = None) -> float:
        return self.breakdown(gate_type_name, num_vars,
                              custom_zerocheck).total


def proof_size_bytes(gate_type_name: str, num_vars: int) -> int:
    """Analytic proof-size model (Table IX's 4-5 KB column).

    HyperPlonk batches the gate and wire identities into one SumCheck
    over a random combination, so the proof carries a single μ-round
    SumCheck at the maximum degree plus the degree-2 OpenCheck; round
    polynomials are sent as d coefficients (one is implied by the running
    claim).  Commitments and quotients are 48-byte compressed G1 points.
    """
    gate_type = gate_type_by_name(gate_type_name)
    zc_d = gate_by_id(gate_type.zerocheck_gate_id).degree
    pc_d = gate_by_id(gate_type.permcheck_gate_id).degree
    batched_d = max(zc_d, pc_d)
    commits = gate_type.num_witnesses + 2            # witnesses + φ + π̃
    sumcheck_scalars = num_vars * batched_d          # OpenCheck folds in
    final_evals = len(gate_type.selector_names) + 2 * gate_type.num_witnesses + 4
    openings = 48 * num_vars + 2 * 32                # one batched KZG opening
    return (48 * commits + 32 * (sumcheck_scalars + final_evals) + openings)
