"""Full-protocol zkPHIRE model: the five HyperPlonk steps on hardware.

Composes the per-module models into an end-to-end prover latency with
the paper's schedule (§IV-A), including the Masking-ZeroCheck
optimization: Gate Identity's ZeroCheck runs concurrently with the Wire
Identity MSMs (MSMs dominate and have low bandwidth pressure, so the
overlap hides ZeroCheck latency almost entirely).

MSM inventory per proof (§IV-B3): one sparse MSM per witness column
(5 for Jellyfish, 3 for Vanilla); dense MSMs for φ and the (2N-entry)
product tree during Wire Identity; and dense MSM work for the final
batched openings (combined-polynomial quotients ≈ N, product-tree
quotients ≈ 2N).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gates.library import gate_by_id
from repro.hw.config import AcceleratorConfig
from repro.hw.forest import ForestModel
from repro.hw.mle_combine import MLECombineModel
from repro.hw.msm_unit import MSMUnitModel
from repro.hw.permquot import PermQuotModel
from repro.hw.scheduler import PolyProfile, TermProfile
from repro.hw.sumcheck_unit import SumCheckUnitModel
from repro.hyperplonk.circuit import GateType, JELLYFISH, VANILLA


@dataclass
class ProtocolBreakdown:
    """Per-step latencies (seconds)."""

    witness_msm: float
    zerocheck: float
    permquot: float
    prod_tree: float
    wiring_msm: float
    permcheck: float
    batch_evals: float
    mle_combine: float
    opencheck: float
    opening_msm: float
    masked: bool

    @property
    def wire_msm_phase(self) -> float:
        """PermQuot streams into the MSM unit (Fig 5: one-way transfer),
        so generation and the φ/π̃ commitment MSMs overlap."""
        return max(self.permquot + self.prod_tree, self.wiring_msm)

    @property
    def wire_identity(self) -> float:
        return self.wire_msm_phase + self.permcheck

    @property
    def batch_and_open(self) -> float:
        """The final opening MSMs overlap the OpenCheck SumCheck (the
        quotient streams feed the MSM unit as they are produced)."""
        return (self.batch_evals + self.mle_combine
                + max(self.opencheck, self.opening_msm))

    @property
    def total(self) -> float:
        serial = (self.witness_msm + self.wire_identity + self.batch_and_open)
        if self.masked:
            # ZeroCheck overlaps the Wire-Identity MSM phase (masking,
            # §IV-A): only its excess over that phase is exposed
            exposed_zc = max(0.0, self.zerocheck - self.wire_msm_phase)
            return serial + exposed_zc
        return serial + self.zerocheck

    def as_dict(self) -> dict[str, float]:
        return {
            "Witness MSM": self.witness_msm,
            "ZeroCheck": self.zerocheck,
            "PermQuot": self.permquot,
            "Prod Tree": self.prod_tree,
            "Wiring MSM": self.wiring_msm,
            "PermCheck": self.permcheck,
            "Batch Evals": self.batch_evals,
            "MLE Combine": self.mle_combine,
            "OpenCheck": self.opencheck,
            "PolyOpen MSM": self.opening_msm,
        }


def gate_type_by_name(name: str) -> GateType:
    if name == "vanilla":
        return VANILLA
    if name == "jellyfish":
        return JELLYFISH
    raise ValueError(f"unknown gate type {name!r}")


#: distinct opening points in the protocol (Table I row 24 has six
#: y_i · fr_i terms; polynomials opened at the same point are first
#: random-linear-combined by the MLE Combine module)
OPENCHECK_POINTS = 6


def opencheck_profile(num_points: int = OPENCHECK_POINTS) -> PolyProfile:
    """Table I row 24: Σ_i y_i(x) · eq_i(x) over the distinct opening
    points, degree 2.  y_i is the pre-combined polynomial for point i."""
    terms = [
        TermProfile(((f"y{i}", 1), (f"fr{i}", 1))) for i in range(num_points)
    ]
    return PolyProfile(name=f"opencheck-{num_points}", terms=terms)


class ZkPhireModel:
    """End-to-end prover-latency model for one zkPHIRE design point."""

    def __init__(self, config: AcceleratorConfig):
        self.config = config
        bw, f = config.bandwidth_gbps, config.freq_ghz
        self.sumcheck = SumCheckUnitModel(config.sumcheck, bw, f)
        self.msm = MSMUnitModel(config.msm, bw, f)
        self.forest = ForestModel(config.forest, bw, f)
        self.permquot = PermQuotModel(config.permquot, bw, f)
        self.mle_combine = MLECombineModel(bw, f)

    # -- polynomial profiles --------------------------------------------------
    def _zerocheck_profile(self, gate_type: GateType) -> PolyProfile:
        return PolyProfile.from_gate(gate_by_id(gate_type.zerocheck_gate_id))

    def _permcheck_profile(self, gate_type: GateType) -> PolyProfile:
        return PolyProfile.from_gate(gate_by_id(gate_type.permcheck_gate_id))

    def _num_claims(self, gate_type: GateType) -> int:
        k = gate_type.num_witnesses
        selectors = len(gate_type.selector_names)
        # gate point: selectors + witnesses; perm point: w, σ, φ
        return selectors + k + (2 * k + 1)

    # -- the model ---------------------------------------------------------------
    def breakdown(self, gate_type_name: str, num_vars: int,
                  custom_zerocheck: PolyProfile | None = None) -> ProtocolBreakdown:
        """Model a full proof for 2^num_vars gates.

        ``custom_zerocheck`` substitutes the Gate-Identity polynomial
        (used by the high-degree sweep, Fig 14).
        """
        gate_type = gate_type_by_name(gate_type_name)
        n = 1 << num_vars
        k = gate_type.num_witnesses

        witness_msm = sum(
            self.msm.latency_s(n, sparse=True) for _ in range(k)
        )

        zc_profile = custom_zerocheck or self._zerocheck_profile(gate_type)
        zerocheck = self.sumcheck.run(zc_profile, num_vars).latency_s

        pq = self.permquot.run(n, k)
        tree = self.forest.product_tree(n)
        wiring_msm = (self.msm.latency_s(n, sparse=False)
                      + self.msm.latency_s(2 * n, sparse=False))
        permcheck = self.sumcheck.run(
            self._permcheck_profile(gate_type), num_vars
        ).latency_s

        claims = self._num_claims(gate_type)
        batch = self.forest.batch_eval(claims, n)
        combine = self.mle_combine.run(n, streams=claims)
        oc_profile = opencheck_profile()
        opencheck = self.sumcheck.run(oc_profile, num_vars,
                                      fuse_fr=False).latency_s
        opening_msm = (self.msm.latency_s(n, sparse=False)
                       + self.msm.latency_s(2 * n, sparse=False))

        return ProtocolBreakdown(
            witness_msm=witness_msm,
            zerocheck=zerocheck,
            permquot=pq.latency_s,
            prod_tree=tree.latency_s,
            wiring_msm=wiring_msm,
            permcheck=permcheck,
            batch_evals=batch.latency_s,
            mle_combine=combine.latency_s,
            opencheck=opencheck,
            opening_msm=opening_msm,
            masked=self.config.mask_zerocheck,
        )

    def prove_latency_s(self, gate_type_name: str, num_vars: int,
                        custom_zerocheck: PolyProfile | None = None) -> float:
        return self.breakdown(gate_type_name, num_vars,
                              custom_zerocheck).total


def proof_size_bytes(gate_type_name: str, num_vars: int) -> int:
    """Analytic proof-size model (Table IX's 4-5 KB column).

    HyperPlonk batches the gate and wire identities into one SumCheck
    over a random combination, so the proof carries a single μ-round
    SumCheck at the maximum degree plus the degree-2 OpenCheck; round
    polynomials are sent as d coefficients (one is implied by the running
    claim).  Commitments and quotients are 48-byte compressed G1 points.
    """
    gate_type = gate_type_by_name(gate_type_name)
    zc_d = gate_by_id(gate_type.zerocheck_gate_id).degree
    pc_d = gate_by_id(gate_type.permcheck_gate_id).degree
    batched_d = max(zc_d, pc_d)
    commits = gate_type.num_witnesses + 2            # witnesses + φ + π̃
    sumcheck_scalars = num_vars * batched_d          # OpenCheck folds in
    final_evals = len(gate_type.selector_names) + 2 * gate_type.num_witnesses + 4
    openings = 48 * num_vars + 2 * 32                # one batched KZG opening
    return (48 * commits + 32 * (sumcheck_scalars + final_evals) + openings)
