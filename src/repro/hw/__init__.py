"""The zkPHIRE hardware performance, area, and power model.

This package is the quantitative heart of the reproduction: analytical
models of every zkPHIRE module, mirroring the paper's own methodology
(§V: HLS-extracted per-module cycle behaviour composed into analytical
simulators with bandwidth constraints).

Modules
-------
``tech``            published area/power constants, 22nm→7nm scaling
``config``          hardware configuration dataclasses (Table III knobs)
``scheduler``       the Figure-2 graph-decomposition scheduler
``sumcheck_unit``   programmable SumCheck unit latency/utilization model
``msm_unit``        Pippenger MSM unit model
``forest``          Multifunction Forest (tree reduction) model
``permquot``        Permutation Quotient Generator model
``mle_combine``     element-wise / dot-product module model
``memory``          bandwidth tiers, PHY selection, SRAM sizing
``area`` / ``power`` per-module rollups (Table V)
``cpu_baseline``    CPU cost model calibrated to the paper's runtimes
``gpu_baseline``    A100/ICICLE reference numbers (Table II)
``zkspeed``         zkSpeed / zkSpeed+ comparator models
``accelerator``     full-protocol schedule incl. ZeroCheck masking
``dse``             design-space exploration and Pareto frontiers

The protocol *inventory* (which MSMs/SumChecks/Forest passes one proof
performs) lives in the shared plan layer: ``ZkPhireModel.price(plan)``
and ``CpuModel.price(plan)`` price a :class:`repro.plan.ProofPlan`, and
``breakdown()`` is the shape-level convenience that builds the canonical
plan first (DESIGN.md §6).
"""

from repro.hw.config import (
    AcceleratorConfig,
    ForestConfig,
    MSMUnitConfig,
    PermQuotConfig,
    SumCheckUnitConfig,
)
from repro.hw.scheduler import PolynomialSchedule, schedule_polynomial
from repro.hw.sumcheck_unit import SumCheckUnitModel, SumCheckRun
from repro.hw.msm_unit import MSMUnitModel
from repro.hw.forest import ForestModel
from repro.hw.accelerator import ZkPhireModel, ProtocolBreakdown
from repro.hw.cpu_baseline import CpuModel
from repro.hw.dse import DesignPoint, pareto_frontier

__all__ = [
    "AcceleratorConfig",
    "ForestConfig",
    "MSMUnitConfig",
    "PermQuotConfig",
    "SumCheckUnitConfig",
    "PolynomialSchedule",
    "schedule_polynomial",
    "SumCheckUnitModel",
    "SumCheckRun",
    "MSMUnitModel",
    "ForestModel",
    "ZkPhireModel",
    "ProtocolBreakdown",
    "CpuModel",
    "DesignPoint",
    "pareto_frontier",
]
