"""CPU baseline cost model, calibrated to the paper's measurements.

The paper benchmarks SumChecks on an AMD EPYC 7502 (4 threads for the
standalone unit, 32 threads for the full protocol).  We reproduce those
baselines with an operation-count model: a SumCheck's modular-multiply
count follows directly from the polynomial structure (the shared
:func:`repro.plan.cost.sumcheck_modmuls` formula), and a single
calibration constant (effective ns per modmul at 4 threads) is fitted to
Table II's CPU column.  Full-protocol CPU times come from the paper's
reported per-workload measurements (``repro.workloads``); the per-phase
split of Figure 12a is exposed for the breakdown experiment, and
:meth:`CpuModel.price` prices a whole :class:`~repro.plan.ProofPlan`
analytically (per-phase modmul estimates × the calibrated constant).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.plan.cost import PlanPrice, plan_modmuls, sumcheck_modmuls
from repro.plan.profiles import PolyProfile
from repro.plan.proof_plan import ProofPlan

__all__ = [
    "CPU_PHASE_FRACTIONS",
    "CpuModel",
    "NS_PER_MODMUL_4T",
    "sumcheck_modmuls",
]

#: effective nanoseconds per 255-bit modular multiply at the reference
#: 4-thread setting.  Fitted as the geometric mean of the constants
#: implied by Table II's eight CPU entries (7.2-17.5 ns; see
#: EXPERIMENTS.md "CPU calibration").
NS_PER_MODMUL_4T = 11.5

#: Figure 12a: CPU full-protocol runtime split (fractions sum to 1)
CPU_PHASE_FRACTIONS = {
    "Sparse MSMs": 0.130,
    "Gate Identity": 0.129,
    "Gen PermCheck MLEs": 0.099,
    "PermCheck Dense MSMs": 0.109,
    "PermCheck": 0.095,
    "Batch Evals": 0.101,
    "MLE Combine": 0.057,
    "OpenCheck": 0.068,
    "Poly Open Dense MSMs": 0.212,
}


@dataclass
class CpuModel:
    """SumCheck CPU timing: op count × calibrated per-op cost."""

    threads: int = 4
    ns_per_modmul_4t: float = NS_PER_MODMUL_4T
    #: parallel efficiency when scaling beyond the 4-thread reference
    scaling_efficiency: float = 0.75

    def _ns_per_modmul(self) -> float:
        if self.threads == 4:
            return self.ns_per_modmul_4t
        speedup = (self.threads / 4.0) * self.scaling_efficiency
        return self.ns_per_modmul_4t / speedup

    def sumcheck_seconds(self, poly: PolyProfile, num_vars: int,
                         repeats: int = 1) -> float:
        muls = sumcheck_modmuls(poly, num_vars) * repeats
        return muls * self._ns_per_modmul() * 1e-9

    def price(self, plan: ProofPlan) -> PlanPrice:
        """Analytic per-phase CPU seconds for a whole proof plan.

        CPUs overlap nothing, so ``price(plan).total_s`` is the plain
        phase sum (contrast ``ZkPhireModel.price``, whose breakdown
        applies the accelerator's overlap schedule).
        """
        ns = self._ns_per_modmul()
        return PlanPrice({
            name: muls * ns * 1e-9
            for name, muls in plan_modmuls(plan).items()
        })

    def phase_breakdown(self, total_seconds: float) -> dict[str, float]:
        """Split a measured full-protocol runtime by Figure 12a's shares."""
        return {k: v * total_seconds for k, v in CPU_PHASE_FRACTIONS.items()}
