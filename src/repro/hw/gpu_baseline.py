"""GPU baseline: the paper's measured A100/ICICLE SumCheck runtimes.

Table II measurements (NVIDIA A100 40 GB, 1.6 TB/s, ICICLE [23]).
ICICLE supports at most eight unique constituent MLEs per composite
polynomial, so HyperPlonk polynomials 21-24 have no GPU entry — the
programmability gap zkPHIRE closes (§VI-A4).
"""

from __future__ import annotations

#: Table II GPU column, milliseconds, keyed like the experiment rows
GPU_RUNTIMES_MS: dict[str, float] = {
    "spartan1": 571.0,          # (A·B - C)·f_tau, 2^24
    "spartan2": 586.0,          # (Sum_ABC)·Z, 2^25
    "abc_x12": 5376.0,          # A·B·C × 12 SumChecks, 2^24
    "abc_x6": 1440.0,           # A·B·C × 6, 2^23
    "abc_x4": 3460.0,           # A·B·C × 4, 2^25
    "hp20": 1089.0,             # Vanilla gate portion of poly 20 (no fr)
}

#: polynomials ICICLE cannot express (more than 8 unique MLEs)
GPU_UNSUPPORTED: tuple[str, ...] = ("hp21", "hp22", "hp23", "hp24")

ICICLE_MAX_UNIQUE_MLES = 8


def gpu_supported(num_unique_mles: int) -> bool:
    return num_unique_mles <= ICICLE_MAX_UNIQUE_MLES
